"""Per-node open-request rate limiting.

Fault case (iii) of §III-C: "a faulty node may broadcast a large number of
requests to deteriorate performance.  To avoid this, ZugChain limits the
number of open requests a node can send in parallel and other correct
nodes drop any further received requests.  The limit is calculated based
on the bus frequency."
"""

from __future__ import annotations

from repro.util.errors import ConfigError


def limit_from_bus(cycle_time_s: float, hard_timeout_s: float, headroom: float = 2.0) -> int:
    """Derive the open-request limit from the bus frequency.

    A correct node has at most one new request per bus cycle, and a request
    stays open at most ``hard_timeout`` before deciding or escalating; the
    steady-state number of legitimately open requests is therefore bounded
    by ``hard_timeout / cycle_time`` (times a headroom factor for delay and
    reordering bursts).
    """
    if cycle_time_s <= 0:
        raise ConfigError("cycle time must be positive")
    return max(1, int(hard_timeout_s / cycle_time_s * headroom))


class OpenRequestLimiter:
    """Tracks open broadcast requests per origin node and enforces the cap."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigError("open-request limit must be >= 1")
        self.limit = limit
        self._open: dict[str, set[bytes]] = {}
        self.rejected = 0

    def try_acquire(self, node_id: str, digest: bytes) -> bool:
        """Admit a broadcast from ``node_id``; False once its cap is reached."""
        open_set = self._open.setdefault(node_id, set())
        if digest in open_set:
            return True  # re-delivery of an already-admitted request
        if len(open_set) >= self.limit:
            self.rejected += 1
            return False
        open_set.add(digest)
        return True

    def release(self, node_id: str, digest: bytes) -> None:
        """Free a slot once the request decided (or was discarded)."""
        open_set = self._open.get(node_id)
        if open_set is not None:
            open_set.discard(digest)

    def release_digest(self, digest: bytes) -> None:
        """Free the digest regardless of which node's slot holds it."""
        for open_set in self._open.values():
            open_set.discard(digest)

    def open_count(self, node_id: str) -> int:
        return len(self._open.get(node_id, ()))
