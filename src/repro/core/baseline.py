"""The evaluation baseline: PBFT with traditional client handling.

"We compare ZugChain's communication layer with PBFT and traditional
client handling ('baseline'), where each node runs a client and replica
process and every client reads bus data and forwards it to the primary as
a BFT request.  Identical requests are thus ordered up to four times"
(§V-A).

The baseline node hosts a client (submits every bus cycle's request to the
primary, retransmits on timeout) and a replica (orders whatever arrives,
deduplicating only on complete requests including client ids — never on
payloads — exactly PBFT's behaviour).  Backups arm a censorship timer per
client request; on expiry they suspect the primary, which is the
baseline's only view-change trigger (500 ms in Fig. 8).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.bft.client import ClientRequestWrapper, PbftClient, Reply
from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint, Commit, NewView, PrePrepare, Prepare, ViewChange
from repro.bft.replica import PbftReplica
from repro.bft.env import Env
from repro.bus.frames import BusCycleData
from repro.bus.nsdb import Nsdb
from repro.bus.reception import BusReceiver
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.crypto.keys import KeyPair, KeyStore
from repro.obs.trace import NULL_TRACER, Tracer
from repro.sim.monitor import LatencyRecorder
from repro.wire.messages import SignedRequest

_BFT_MESSAGE_TYPES = (PrePrepare, Prepare, Commit, Checkpoint, ViewChange, NewView)


class BaselineNode:
    """One node of the baseline system: client + replica + logging service."""

    def __init__(
        self,
        env: Env,
        bft_config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        nsdb: Nsdb,
        chain_id: str = "baseline",
        on_block: Callable[[Block], None] | None = None,
        censorship_timeout_s: float | None = None,
        max_client_pending: int = 256,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.id = env.node_id
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.bft_config = bft_config
        self.keystore = keystore
        self.receiver = BusReceiver(nsdb)
        self.chain = Blockchain(chain_id=chain_id)
        self.latency = LatencyRecorder(name=f"{self.id}.latency")
        self._recv_times: OrderedDict[bytes, float] = OrderedDict()
        self._on_block_cb = on_block or (lambda block: None)
        self._censorship_timeout_s = censorship_timeout_s or bft_config.view_change_timeout_s

        self.replica = PbftReplica(
            env=env,
            config=bft_config,
            keypair=keypair,
            keystore=keystore,
            on_decide=self._decided,
            on_new_primary=self._new_primary,
            tracer=self.tracer,
        )
        self.client = PbftClient(
            env=env,
            config=bft_config,
            keypair=keypair,
            keystore=keystore,
            on_complete=self._client_complete,
        )
        from repro.core.blockbuilder import BlockBuilder

        self.builder = BlockBuilder(
            chain=self.chain,
            block_size=bft_config.checkpoint_interval,
            on_block=self._on_block_cb,
            record_checkpoint=self.replica.record_checkpoint,
            now_us=lambda: int(env.now() * 1e6),
        )
        # PBFT-style dedup: (client id, request digest) pairs already
        # proposed or executed — payload-identical requests from different
        # clients are NOT duplicates here, which is the baseline's overhead.
        self._proposed_keys: set[tuple[str, bytes]] = set()
        self._executed_keys: set[tuple[str, bytes]] = set()
        self._censorship_timers: dict[tuple[str, bytes], Any] = {}
        self._max_client_pending = max_client_pending
        self.requests_logged = 0
        self.client_requests_seen = 0
        self.requests_shed = 0

    # -- bus side -------------------------------------------------------------------

    def on_bus_cycle(self, cycle: BusCycleData) -> None:
        now_us = int(self.env.now() * 1e6)
        request = self.receiver.on_cycle(cycle, now_us)
        if request is None:
            return
        if self.client.pending_count >= self._max_client_pending:
            # Finite client buffer: under overload the baseline sheds load
            # ("the baseline cannot keep up ... and requests are dropped",
            # §V-B) rather than growing its timer population without bound.
            self.requests_shed += 1
            return
        digest = request.digest
        if digest not in self._recv_times:
            self._recv_times[digest] = self.env.now()
            if self.tracer.enabled:
                self.tracer.emit("bus.rx", self.env.now(), self.id,
                                 digest=digest.hex(), link=request.source_link)
            while len(self._recv_times) > 10_000:
                self._recv_times.popitem(last=False)
        signed = self.client.submit(request)
        # Client and replica are co-located: the backup replica learns of its
        # own client's request immediately and starts the view-change timer
        # ("the replica starts the timer once it discovers the fault", §V-B).
        if not self.replica.is_primary:
            key = (signed.node_id, signed.digest)
            if key not in self._censorship_timers and key not in self._executed_keys:
                self._censorship_timers[key] = self.env.set_timer(
                    self._effective_censorship_timeout(),
                    lambda: self._censorship_expired(key),
                )

    # -- network side ------------------------------------------------------------------

    def handle_message(self, src: str, message: Any) -> None:
        if isinstance(message, ClientRequestWrapper):
            self._on_client_request(src, message)
        elif isinstance(message, Reply):
            self.client.on_reply(message)
        elif isinstance(message, _BFT_MESSAGE_TYPES):
            self.replica.on_message(src, message)

    def _on_client_request(self, src: str, wrapper: ClientRequestWrapper) -> None:
        signed = wrapper.request
        if not signed.verify(self.keystore):
            return
        self.client_requests_seen += 1
        key = (signed.node_id, signed.digest)
        if key in self._executed_keys:
            return
        if self.replica.is_primary:
            if key not in self._proposed_keys:
                self._proposed_keys.add(key)
                self.replica.propose(signed)
        else:
            # A broadcast (retransmitted) client request on a backup starts
            # the censorship timer: if the primary never orders it, suspect.
            if key not in self._censorship_timers:
                self._censorship_timers[key] = self.env.set_timer(
                    self._effective_censorship_timeout(),
                    lambda: self._censorship_expired(key),
                )

    def _effective_censorship_timeout(self) -> float:
        """PBFT doubles the view-change timeout with every view (backoff).

        Under sustained overload this is what prevents a view-change
        livelock: after a few changes the timeout exceeds the (growing)
        queueing delay and ordering proceeds — slowly, with ballooning
        queues, which is exactly the collapse Fig. 6/7 show at 32 ms.
        """
        return self._censorship_timeout_s * (2 ** min(self.replica.view, 6))

    def _censorship_expired(self, key: tuple[str, bytes]) -> None:
        self._censorship_timers.pop(key, None)
        if key not in self._executed_keys:
            self.replica.suspect()

    # -- replica upcalls ------------------------------------------------------------------

    def _decided(self, signed: SignedRequest, seq: int) -> None:
        key = (signed.node_id, signed.digest)
        self._executed_keys.add(key)
        self._proposed_keys.add(key)
        timer = self._censorship_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        received = self._recv_times.get(signed.digest)
        if received is not None:
            self.latency.record(self.env.now(), self.env.now() - received)
        self.requests_logged += 1
        if self.tracer.enabled:
            self.tracer.emit("req.logged", self.env.now(), self.id,
                             digest=signed.digest.hex(), seq=seq)
        self.builder.add(signed, seq)
        # PBFT reply to the submitting client.
        reply = Reply(
            seq=seq, digest=signed.digest, client_id=signed.node_id,
            replica_id=self.id,
        ).signed(self.replica.keypair)
        if signed.node_id == self.id:
            self.client.on_reply(reply)
        else:
            self.env.send(signed.node_id, reply)

    def _client_complete(self, signed: SignedRequest, seq: int, latency: float) -> None:
        # Client-side completion is tracked for liveness, not for the latency
        # figures (the paper measures reception-to-commit on the replica).
        pass

    def _new_primary(self, primary_id: str) -> None:
        self.client.note_primary(primary_id)
        # Timers armed under the deposed primary must restart in the new
        # view, otherwise every request pending across the change would
        # immediately depose the new primary as well (PBFT restarts its
        # request timers on entering a view).
        for key, timer in list(self._censorship_timers.items()):
            timer.cancel()
            self._censorship_timers[key] = self.env.set_timer(
                self._effective_censorship_timeout(),
                lambda key=key: self._censorship_expired(key),
            )

    # -- accounting -------------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return (
            self.replica.log_size_bytes()
            + self.chain.total_size_bytes()
            + self.builder.pending_size_bytes()
            + len(self._proposed_keys) * 48
            + len(self._executed_keys) * 48
            + self.client.pending_count * 1200
        )
