"""Deterministic block assembly with per-block checkpoints.

"Once a certain threshold of ordered requests has been reached, the
replicas deterministically bundle and hash them and store the created
block on disk" (§III-C).  "A block is created after sufficient requests
have been ordered, and for every block a checkpoint including this block
and all its requests is created" (§III-C, Checkpointing).
"""

from __future__ import annotations

from typing import Callable

from repro.bft.messages import checkpoint_state_digest
from repro.chain.block import Block, build_block
from repro.chain.blockchain import Blockchain
from repro.wire.messages import SignedRequest


class BlockBuilder:
    """Accumulates decided requests and cuts blocks at the size threshold."""

    def __init__(
        self,
        chain: Blockchain,
        block_size: int,
        on_block: Callable[[Block], None],
        record_checkpoint: Callable[[int, int, bytes, bytes], None],
        now_us: Callable[[], int],
    ) -> None:
        self._chain = chain
        self._block_size = block_size
        self._on_block = on_block
        self._record_checkpoint = record_checkpoint
        self._now_us = now_us
        self._pending: list[tuple[int, SignedRequest]] = []
        self.blocks_built = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_size_bytes(self) -> int:
        return sum(req.encoded_size() for _, req in self._pending)

    def pending_digests(self) -> list[bytes]:
        return [req.digest for _, req in self._pending]

    def add(self, signed: SignedRequest, seq: int) -> Block | None:
        """Append a decided request; returns the new block when one is cut."""
        self._pending.append((seq, signed))
        if len(self._pending) < self._block_size:
            return None
        return self._cut_block()

    def _cut_block(self) -> Block:
        requests = [req for _, req in self._pending]
        last_sn = self._pending[-1][0]
        self._pending.clear()
        # The block timestamp must be identical on every replica or the block
        # hashes (and thus the checkpoints) would diverge.  The reception
        # timestamp inside the last ordered request is part of the agreed
        # payload — deterministic — whereas each node's local clock is not.
        block = build_block(
            self._chain.head.header,
            requests,
            timestamp_us=requests[-1].request.recv_timestamp_us,
            last_sn=last_sn,
        )
        self._chain.append(block)
        self.blocks_built += 1
        self._on_block(block)
        # One checkpoint per block, signed by this replica (§III-C): the
        # state digest covers the block hash, chain height, and still-open
        # request digests, so 2f+1 matching checkpoints prove the block.
        state_digest = checkpoint_state_digest(
            block.block_hash, block.height, self.pending_digests()
        )
        self._record_checkpoint(last_sn, block.height, block.block_hash, state_digest)
        return block
