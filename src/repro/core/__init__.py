"""The ZugChain core: the BFT communication layer for bus input (Alg. 1).

This package is the paper's primary contribution.  It adapts the
authenticated, individual clients of primary-based BFT protocols to input
arriving over a single, unauthenticated, time-triggered bus:

* :mod:`repro.core.filtering` — content-based duplicate detection over a
  sliding window of past checkpoints plus open requests;
* :mod:`repro.core.ratelimit` — per-node open-request limits (DoS defence,
  fault case iii of §III-C);
* :mod:`repro.core.messages`  — the layer's broadcast/forward envelopes;
* :mod:`repro.core.layer`     — the Algorithm 1 state machine: receive,
  propose-on-primary, soft/hard timeouts, broadcast, forward, duplicate
  suspicion, re-proposal after view changes;
* :mod:`repro.core.blockbuilder` — deterministic bundling of decided
  requests into blocks with per-block checkpoints;
* :mod:`repro.core.node`      — full ZugChain node assembly (bus receiver,
  layer, PBFT replica, blockchain, export handler hookup);
* :mod:`repro.core.baseline`  — the evaluation baseline: traditional PBFT
  client/replica pairs on every node.
"""

from repro.core.filtering import DedupIndex
from repro.core.ratelimit import OpenRequestLimiter
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.layer import ZugChainConfig, ZugChainLayer
from repro.core.blockbuilder import BlockBuilder
from repro.core.node import ZugChainNode
from repro.core.baseline import BaselineNode

__all__ = [
    "DedupIndex",
    "OpenRequestLimiter",
    "ZugBroadcast",
    "ZugForward",
    "ZugChainConfig",
    "ZugChainLayer",
    "BlockBuilder",
    "ZugChainNode",
    "BaselineNode",
]
