"""The ZugChain communication layer — Algorithm 1 of the paper.

Replaces traditional BFT client interaction with direct handling of bus
input.  Line references below are to Alg. 1:

* ``receive`` (ln. 5–11): insert into the request queue R; the node
  co-located with the primary signs and PROPOSEs; backups arm a
  SOFT_TIMEOUT per request;
* ``on_decide`` (ln. 12–20): remove from R, cancel timers, suspect the
  primary on duplicates (ln. 17–18), otherwise LOG with the origin id;
* soft timeout (ln. 21–24): sign, start HARD_TIMEOUT, broadcast;
* ``on_broadcast`` (ln. 25–32): ignore logged duplicates, primary proposes
  unseen requests with the broadcaster's id, backups arm a HARD_TIMEOUT
  and forward to the primary;
* hard timeout (ln. 33–35): suspect the primary (censorship detection);
* ``on_new_primary`` (ln. 36–43): the new primary proposes all open
  requests, backups restart their soft timeouts.

The layer supports multiple input sources (one queue per connected link,
§III-C "Multiple Input Sources"), rate limits open broadcasts per node
(fault case iii), and can optionally treat an observed preprepare as an
early indication that a request will be ordered, cancelling its soft
timeout (§III-C optimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.filtering import DedupIndex
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.ratelimit import OpenRequestLimiter
from repro.bft.env import Env
from repro.crypto.keys import KeyPair, KeyStore
from repro.obs.trace import NULL_TRACER, Tracer
from repro.wire.messages import Request, SignedRequest, is_null_request


@dataclass(frozen=True)
class ZugChainConfig:
    """Timeouts and filter parameters of the communication layer.

    The evaluation uses soft = hard = 250 ms so the total until a view
    change matches the baseline's 500 ms view-change timeout (Fig. 8).
    """

    soft_timeout_s: float = 0.250
    hard_timeout_s: float = 0.250
    checkpoint_interval: int = 10
    dedup_window_checkpoints: int = 16
    max_open_per_node: int = 16
    preprepare_cancels_soft: bool = True
    filtering_enabled: bool = True  # ablation knob; False ≈ order every copy


@dataclass
class _OpenRequest:
    """R-queue entry: the request plus its timer state."""

    request: Request
    received_at: float
    source_link: str
    soft_timer: object = None
    hard_timer: object = None
    broadcast_origin: str | None = None  # set when it entered via a broadcast


@dataclass
class LayerStats:
    received: int = 0
    proposed: int = 0
    filtered_duplicates: int = 0
    soft_timeouts: int = 0
    hard_timeouts: int = 0
    broadcasts_sent: int = 0
    forwards_sent: int = 0
    broadcasts_ignored_logged: int = 0
    broadcasts_rate_limited: int = 0
    duplicate_decides: int = 0
    suspicions: int = 0
    logged: int = 0
    nulls_decided: int = 0
    synced_recorded: int = 0


class ZugChainLayer:
    """Algorithm 1, bound to an Env, a BFT module, and a LOG upcall."""

    def __init__(
        self,
        env: Env,
        config: ZugChainConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        propose: Callable[[SignedRequest], bool],
        suspect: Callable[[], None],
        on_log: Callable[[SignedRequest, int], None],
        initial_primary: str,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.keypair = keypair
        self.keystore = keystore
        self._propose = propose
        self._suspect_bft = suspect
        self._on_log = on_log
        self.primary = initial_primary
        self.id = env.node_id

        self._queue: dict[bytes, _OpenRequest] = {}  # R, keyed by digest
        self._dedup = DedupIndex(
            checkpoint_interval=config.checkpoint_interval,
            window_checkpoints=config.dedup_window_checkpoints,
        )
        self._limiter = OpenRequestLimiter(config.max_open_per_node)
        self.stats = LayerStats()

    # -- introspection -----------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.primary == self.id

    @property
    def open_requests(self) -> int:
        return len(self._queue)

    def queue_size_bytes(self) -> int:
        return sum(
            len(entry.request.payload) + 64 for entry in self._queue.values()
        ) + self._dedup.size_bytes()

    def in_log(self, digest: bytes) -> bool:
        return self._dedup.in_log(digest)

    def in_queue(self, digest: bytes) -> bool:
        return digest in self._queue

    # -- ln. 5–11: bus reception ----------------------------------------------------

    def receive(self, request: Request) -> None:
        """RECEIVE upcall: parsed request read from the bus."""
        self.stats.received += 1
        digest = request.digest
        if self.config.filtering_enabled and self._dedup.in_log(digest):
            # Late or re-delivered bus data already logged: nothing to do.
            self.stats.filtered_duplicates += 1
            if self.tracer.enabled:
                self.tracer.emit("layer.dedup_drop", self.env.now(), self.id,
                                 where="rx", digest=digest.hex())
            return
        if digest in self._queue:
            # Same content already open (e.g. second link delivered it too).
            self.stats.filtered_duplicates += 1
            if self.tracer.enabled:
                self.tracer.emit("layer.dedup_drop", self.env.now(), self.id,
                                 where="rx", digest=digest.hex())
            return
        entry = _OpenRequest(
            request=request,
            received_at=self.env.now(),
            source_link=request.source_link,
        )
        self._queue[digest] = entry
        if self.is_primary:
            signed = SignedRequest.create(request, self.id, self.keypair)
            self.stats.proposed += 1
            self._propose(signed)
        elif not self.config.filtering_enabled:
            # Ablation mode: no duplicate suppression at all — every node
            # submits its copy immediately, as traditional clients would.
            signed = SignedRequest.create(request, self.id, self.keypair)
            self.stats.broadcasts_sent += 1
            self.env.broadcast(ZugBroadcast(request=signed))
            entry.hard_timer = self.env.set_timer(
                self.config.hard_timeout_s, lambda: self._hard_timeout(digest)
            )
        else:
            entry.soft_timer = self.env.set_timer(
                self.config.soft_timeout_s, lambda: self._soft_timeout(digest)
            )

    # -- ln. 21–24: soft timeout ------------------------------------------------------

    def _soft_timeout(self, digest: bytes) -> None:
        entry = self._queue.get(digest)
        if entry is None:
            return
        self.stats.soft_timeouts += 1
        signed = SignedRequest.create(entry.request, self.id, self.keypair)
        entry.hard_timer = self.env.set_timer(
            self.config.hard_timeout_s, lambda: self._hard_timeout(digest)
        )
        self.stats.broadcasts_sent += 1
        self.env.broadcast(ZugBroadcast(request=signed))
        # The broadcast does not reach its sender over the network; handle the
        # primary-side logic locally if this node *became* primary meanwhile.
        if self.is_primary:
            self.stats.proposed += 1
            self._propose(signed)

    # -- ln. 25–32: broadcast handling ---------------------------------------------------

    def on_broadcast(self, src: str, broadcast: ZugBroadcast) -> None:
        signed = broadcast.request
        digest = signed.digest
        if self.config.filtering_enabled and self._dedup.in_log(digest):
            self.stats.broadcasts_ignored_logged += 1  # ln. 26–27
            if self.tracer.enabled:
                self.tracer.emit("layer.dedup_drop", self.env.now(), self.id,
                                 where="broadcast", digest=digest.hex())
            return
        if not signed.verify(self.keystore):
            return  # fabricated signature: drop silently
        if not self._limiter.try_acquire(signed.node_id, digest):
            self.stats.broadcasts_rate_limited += 1  # fault case iii
            return
        if self.is_primary:
            if not self.config.filtering_enabled:
                # Ablation mode: propose every received copy unconditionally.
                self.stats.proposed += 1
                self._propose(signed)
                return
            if digest not in self._queue:  # ln. 28–29
                entry = _OpenRequest(
                    request=signed.request,
                    received_at=self.env.now(),
                    source_link=signed.request.source_link,
                    broadcast_origin=signed.node_id,
                )
                self._queue[digest] = entry
                self.stats.proposed += 1
                self._propose(signed)  # propose with the broadcaster's id
            return
        # Backup: ln. 31–32 — arm a hard timeout, relay to the primary.
        entry = self._queue.get(digest)
        if entry is None:
            entry = _OpenRequest(
                request=signed.request,
                received_at=self.env.now(),
                source_link=signed.request.source_link,
                broadcast_origin=signed.node_id,
            )
            self._queue[digest] = entry
        if entry.soft_timer is not None:
            entry.soft_timer.cancel()
            entry.soft_timer = None
        if entry.hard_timer is None:
            entry.hard_timer = self.env.set_timer(
                self.config.hard_timeout_s, lambda: self._hard_timeout(digest)
            )
        self.stats.forwards_sent += 1
        self.env.send(self.primary, ZugForward(request=signed, forwarder_id=self.id))

    def on_forward(self, src: str, forward: ZugForward) -> None:
        """Primary-side handling of relayed broadcasts (same rules as ln. 25+)."""
        self.on_broadcast(src, ZugBroadcast(request=forward.request))

    # -- ln. 33–35: hard timeout -------------------------------------------------------

    def _hard_timeout(self, digest: bytes) -> None:
        entry = self._queue.get(digest)
        if entry is None:
            return
        if self.config.filtering_enabled and self._dedup.in_log(digest):
            return
        self.stats.hard_timeouts += 1
        self.stats.suspicions += 1
        self._suspect_bft()

    # -- ln. 12–20: decide -----------------------------------------------------------

    def on_decide(self, signed: SignedRequest, seq: int) -> None:
        if is_null_request(signed.request):
            # View-change gap filler: consumes the sequence number but must
            # never reach the blockchain (it carries no bus data).
            self.stats.nulls_decided += 1
            return
        digest = signed.digest
        entry = self._queue.pop(digest, None)  # ln. 13–14
        if entry is not None:
            if entry.soft_timer is not None:
                entry.soft_timer.cancel()  # ln. 15–16
            if entry.hard_timer is not None:
                entry.hard_timer.cancel()
        self._limiter.release_digest(digest)
        if self.config.filtering_enabled and self._dedup.in_log(digest):
            # ln. 17–18: a primary that proposes duplicates is faulty.
            self.stats.duplicate_decides += 1
            self.stats.suspicions += 1
            self._suspect_bft()
            return
        self._dedup.record(digest, seq)
        self.stats.logged += 1
        self._on_log(signed, seq)  # ln. 20: log with the origin node's id

    def on_synced(self, signed: SignedRequest, seq: int) -> None:
        """Close out a request adopted via state transfer.

        The request sits in a checkpoint-verified block, so for filtering
        purposes it IS logged: without recording its digest here, a later
        re-proposal of the same content (a new primary re-driving what it
        thought was still open) would pass the duplicate check on this node
        while every live peer skips it — and the next block this node cuts
        would diverge from the group's.
        """
        digest = signed.digest
        entry = self._queue.pop(digest, None)
        if entry is not None:
            if entry.soft_timer is not None:
                entry.soft_timer.cancel()
            if entry.hard_timer is not None:
                entry.hard_timer.cancel()
        self._limiter.release_digest(digest)
        if not self._dedup.in_log(digest):
            self._dedup.record(digest, seq)
            self.stats.synced_recorded += 1

    # -- §III-C optimization: preprepare as early decide indication ---------------------

    def on_preprepare_observed(self, digest: bytes) -> None:
        if not self.config.preprepare_cancels_soft:
            return
        entry = self._queue.get(digest)
        if entry is not None and entry.soft_timer is not None:
            entry.soft_timer.cancel()
            entry.soft_timer = None

    # -- ln. 36–43: new primary -----------------------------------------------------------

    def on_new_primary(self, primary_id: str) -> None:
        self.primary = primary_id
        for digest, entry in list(self._queue.items()):
            if entry.soft_timer is not None:
                entry.soft_timer.cancel()
                entry.soft_timer = None
            if entry.hard_timer is not None:
                entry.hard_timer.cancel()
                entry.hard_timer = None
            if self.is_primary:
                if not self._dedup.in_log(digest):  # ln. 39–41
                    origin = entry.broadcast_origin or self.id
                    if origin == self.id:
                        signed = SignedRequest.create(entry.request, self.id, self.keypair)
                    else:
                        # Re-propose with our own signature but keep provenance:
                        # the original broadcast signature is not stored, so the
                        # new primary vouches with its own id (it did receive it).
                        signed = SignedRequest.create(entry.request, self.id, self.keypair)
                    self.stats.proposed += 1
                    self._propose(signed)
            else:
                entry.soft_timer = self.env.set_timer(  # ln. 43
                    self.config.soft_timeout_s, self._make_soft_cb(digest)
                )

    def _make_soft_cb(self, digest: bytes):
        return lambda: self._soft_timeout(digest)
