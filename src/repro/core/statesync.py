"""Replica state synchronization: catching up after downtime.

§III-D's discussion (ii) covers "transferring a checkpoint to another
replica": the receiving replica verifies the checkpoint certificate, the
chain segment, and — when the chain does not start at genesis — the signed
deletes that justify its base.  This module turns that into a live
protocol so a node that was down (power cycle, maintenance) rejoins
without replaying the full history:

1. the lagging node notices stable checkpoints far beyond its execution
   point (f+1 distinct peers vouching, so a single liar cannot trigger
   bogus syncs) and sends a :class:`StateRequest` to one of them;
2. the peer answers with a :class:`StateReply` carrying its latest stable
   checkpoint certificate, the blocks from the requester's height, and its
   prune certificate;
3. the requester verifies everything offline and fast-forwards: chain,
   replica watermarks, and block builder move to the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain, PruneCertificate
from repro.crypto.hashing import sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.util.errors import ChainError
from repro.wire.codec import Reader, Writer

_UNSIGNED = b"\x00" * SIGNATURE_SIZE
_DOMAIN_STATE_REQ = b"statesync/request"
_DOMAIN_STATE_REP = b"statesync/reply"


@dataclass(frozen=True)
class StateRequest:
    """A lagging replica asks a peer for everything above ``have_height``."""

    requester_id: str
    have_height: int
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.requester_id.encode(), self.have_height.to_bytes(8, "big"),
                      domain=_DOMAIN_STATE_REQ)

    def signed(self, keypair: KeyPair) -> "StateRequest":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.requester_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.requester_id)
        writer.put_uint(self.have_height)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "StateRequest":
        reader = Reader(data)
        requester_id = reader.get_str()
        have_height = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(requester_id=requester_id, have_height=have_height, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class StateReply:
    """Checkpointed state: certificate, chain segment, prune justification.

    ``view`` carries the responder's current view so a recovering replica
    can catch up past view changes it slept through (a node stuck in an old
    view would suspect the wrong primary forever).  Adopting a peer's view
    only affects liveness, never safety — a lying responder can at worst
    delay the requester's participation until the next genuine view change.
    """

    replica_id: str
    checkpoint: CheckpointCertificate
    blocks: tuple[Block, ...]
    prune_base_height: int
    prune_base_hash: bytes
    prune_signatures: tuple[tuple[str, bytes], ...]  # (dc id, signature)
    view: int = 0
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.replica_id.encode(), self.checkpoint.encode(),
                      self.view.to_bytes(8, "big"),
                      *[block.block_hash for block in self.blocks],
                      domain=_DOMAIN_STATE_REP)

    def signed(self, keypair: KeyPair) -> "StateReply":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def prune_certificate(self) -> PruneCertificate | None:
        if not self.prune_signatures:
            return None
        return PruneCertificate(
            base_height=self.prune_base_height,
            base_block_hash=self.prune_base_hash,
            delete_signatures=dict(self.prune_signatures),
        )

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_bytes(self.checkpoint.encode())
        writer.put_list(list(self.blocks), lambda w, b: w.put_bytes(b.encode()))
        writer.put_uint(self.prune_base_height)
        writer.put_bytes(self.prune_base_hash)
        writer.put_list(list(self.prune_signatures),
                        lambda w, p: (w.put_str(p[0]), w.put_fixed(p[1], SIGNATURE_SIZE)))
        writer.put_uint(self.view)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "StateReply":
        reader = Reader(data)
        replica_id = reader.get_str()
        checkpoint = CheckpointCertificate.decode(reader.get_bytes())
        blocks = reader.get_list(lambda r: Block.decode(r.get_bytes()))
        prune_base_height = reader.get_uint()
        prune_base_hash = reader.get_bytes()
        prune_signatures = reader.get_list(
            lambda r: (r.get_str(), r.get_fixed(SIGNATURE_SIZE))
        )
        view = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, checkpoint=checkpoint, blocks=tuple(blocks),
                   prune_base_height=prune_base_height, prune_base_hash=prune_base_hash,
                   prune_signatures=tuple(prune_signatures), view=view,
                   signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


class StateSync:
    """Per-node state-sync engine, driven by the node's message dispatch."""

    def __init__(
        self,
        env,
        bft_config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        chain: Blockchain,
        replica,
        lag_blocks: int = 3,
        sync_timeout_s: float = 0.5,
        max_sync_retries: int = 4,
        on_fast_forward=None,
        tracer=None,
    ) -> None:
        self.env = env
        self.bft_config = bft_config
        self.keypair = keypair
        self.keystore = keystore
        self.chain = chain
        self.replica = replica
        self.lag_blocks = lag_blocks
        self.sync_timeout_s = sync_timeout_s
        self.max_sync_retries = max_sync_retries
        self._on_fast_forward = on_fast_forward or (lambda blocks: None)
        from repro.obs.trace import NULL_TRACER  # avoid import cycle

        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Checkpoint seqs observed per peer (f+1 rule against liars).
        self._observed_ahead: dict[str, int] = {}
        self._sync_in_flight = False
        self._sync_timer = None
        self._vouchers: list[str] = []
        self._attempt = 0
        self.syncs_completed = 0
        self.syncs_rejected = 0
        self.syncs_retried = 0

    # -- lag detection -----------------------------------------------------------

    def observe_checkpoint(self, src: str, checkpoint: Checkpoint) -> None:
        """Called by the node for every checkpoint message it sees.

        Lag is measured against the *chain*, not the replica's watermark:
        a quorum of peer checkpoints advances the watermark on its own,
        but only a state transfer can backfill the missing blocks.
        """
        if checkpoint.block_height <= self.chain.height + self.lag_blocks:
            return
        # Only a verified member checkpoint may count as a voucher: the
        # f+1 rule below is meaningless if a non-member (or a forger) can
        # populate the vouching map.
        if not self.bft_config.is_member(src) or not checkpoint.verify(self.keystore):
            return
        self._observed_ahead[src] = max(self._observed_ahead.get(src, 0),
                                        checkpoint.block_height)
        vouching = [peer for peer, height in self._observed_ahead.items()
                    if height > self.chain.height + self.lag_blocks]
        if len(vouching) >= self.bft_config.f + 1 and not self._sync_in_flight:
            self._sync_in_flight = True
            self._vouchers = sorted(vouching)
            self._attempt = 0
            self._send_request()

    def sync_from_certificate(self, certificate: CheckpointCertificate) -> None:
        """Force a transfer when the stable watermark outran execution.

        A replica can stabilize a checkpoint it never executed up to: 2f+1
        *peers* certified seq N while this replica still has an execution
        gap below N.  Garbage collection at N then deletes the very
        instances it was missing, so no in-protocol path (commits, decide
        proofs) can ever close the gap — state transfer is the only way
        forward.  The certificate itself carries the 2f+1 signatures, so
        the f+1-voucher rule is already satisfied; its signers minus self
        become the transfer targets.
        """
        if self._sync_in_flight:
            return
        if certificate.block_height <= self.chain.height:
            return
        vouchers = sorted(certificate.signer_ids() - {self.env.node_id})
        if not vouchers:
            return
        self._sync_in_flight = True
        self._vouchers = vouchers
        self._attempt = 0
        self._send_request()

    def _send_request(self) -> None:
        """Send the current attempt's StateRequest and arm its retry timer.

        The target rotates round-robin over the vouching peers (attempt 0
        goes to the lexicographically first, as before) and the timeout
        doubles per attempt, so a crashed or partitioned responder cannot
        wedge the sync — the original code latched ``_sync_in_flight`` and
        waited forever on a single peer.
        """
        target = self._vouchers[self._attempt % len(self._vouchers)]
        request = StateRequest(
            requester_id=self.env.node_id, have_height=self.chain.height,
        ).signed(self.keypair)
        self.env.send(target, request)
        timeout = self.sync_timeout_s * (2 ** self._attempt)
        self._sync_timer = self.env.set_timer(timeout, self._on_sync_timeout)

    def _on_sync_timeout(self) -> None:
        if not self._sync_in_flight:
            return
        if self._attempt >= self.max_sync_retries:
            # Bounded per trigger: release the latch so the next observed
            # checkpoint (fresh f+1 evidence) may start a new sync cycle.
            self._sync_in_flight = False
            self._sync_timer = None
            return
        self._attempt += 1
        self.syncs_retried += 1
        self._send_request()

    # -- serving -------------------------------------------------------------------

    def handle_request(self, src: str, request: StateRequest) -> None:
        if not request.verify(self.keystore):
            return
        checkpoint = self.replica.latest_stable_checkpoint()
        if checkpoint is None:
            return
        first = max(request.have_height + 1, self.chain.base_height)
        last = min(checkpoint.block_height, self.chain.height)
        if request.have_height < self.chain.base_height:
            # The requester is behind our prune point: ship our whole chain
            # (base included) plus the prune certificate that justifies it.
            first = self.chain.base_height
        blocks = tuple(self.chain.blocks_in_range(first, last)) if first <= last else ()
        prune = self.chain.prune_certificate
        reply = StateReply(
            replica_id=self.env.node_id,
            checkpoint=checkpoint,
            blocks=blocks,
            prune_base_height=prune.base_height if prune else 0,
            prune_base_hash=prune.base_block_hash if prune else b"",
            prune_signatures=tuple(prune.delete_signatures.items()) if prune else (),
            view=self.replica.view,
        ).signed(self.keypair)
        self.env.send(request.requester_id, reply)

    # -- applying ---------------------------------------------------------------------

    def handle_reply(self, src: str, reply: StateReply) -> bool:
        """Apply one state reply; returns True when the chain advanced.

        The signature checks run before *any* state is touched: a forged
        reply must not clear the in-flight latch (stalling or re-arming a
        genuine sync) and must not reach the chain-adoption path.
        """
        if not reply.verify(self.keystore):
            self.syncs_rejected += 1
            return False
        if not reply.checkpoint.verify(self.keystore, self.bft_config):
            self.syncs_rejected += 1
            return False
        self._sync_in_flight = False
        if self._sync_timer is not None:
            self._sync_timer.cancel()
            self._sync_timer = None
        if reply.checkpoint.block_height <= self.chain.height:
            return False  # stale: the chain already covers this checkpoint
        try:
            self._apply(reply)
        except ChainError:
            self.syncs_rejected += 1
            return False
        # View catch-up rides on the (signed) reply: monotonic adoption only,
        # enforced by the replica itself.
        self.replica.adopt_view(reply.view)
        self.syncs_completed += 1
        return True

    def _apply(self, reply: StateReply) -> None:
        had_height = self.chain.height
        blocks = sorted(reply.blocks, key=lambda b: b.height)
        if blocks and blocks[0].height != self.chain.height + 1:
            # Non-contiguous with our chain — either the peer pruned past our
            # head (its base is ahead of us) or the segment overlaps what we
            # have.  Verify the candidate standalone (including its prune
            # certificate when it does not start at genesis), then adopt it.
            candidate = Blockchain.from_blocks(
                blocks, chain_id=self.chain.chain_id,
                prune_certificate=reply.prune_certificate(),
            )
            head = candidate.block_at(reply.checkpoint.block_height)
            if head.block_hash != reply.checkpoint.block_hash:
                raise ChainError("transferred chain does not match the checkpoint")
            self.chain._blocks = candidate._blocks
            self.chain.prune_certificate = candidate.prune_certificate
        else:
            # Incremental: extend our own chain block by block (append verifies).
            for block in blocks:
                self.chain.append(block)
            if self.chain.height < reply.checkpoint.block_height:
                raise ChainError("state reply did not reach the checkpoint height")
            head = self.chain.block_at(reply.checkpoint.block_height)
            if head.block_hash != reply.checkpoint.block_hash:
                raise ChainError("synced chain head does not match the checkpoint")
        # The adopted checkpoint sits on a block boundary (its state digest
        # covers an empty builder), so the application must reset its block
        # assembly — and record the adopted requests as logged for duplicate
        # filtering — *before* fast_forward replays queued post-checkpoint
        # decides into it.  Stale pre-sync builder leftovers would cut a
        # divergent block that no later append can ever reconcile.
        adopted = tuple(b for b in blocks if b.height > had_height)
        self._on_fast_forward(adopted)
        self.replica.fast_forward(reply.checkpoint)
        if self.tracer.enabled:
            # Requests adopted via state transfer were never locally ordered,
            # so they get their own taxonomy event rather than ``req.logged``
            # (the oracle's omission check quantifies over correct nodes
            # only; this keeps recovered nodes auditable without faking an
            # ordering they did not perform).
            now = self.env.now()
            for block in blocks:
                if block.height <= had_height:
                    continue
                for signed in block.requests:
                    self.tracer.emit("req.synced", now, self.env.node_id,
                                     digest=signed.digest.hex(),
                                     height=block.height)
