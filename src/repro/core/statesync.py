"""Replica state synchronization: catching up after downtime.

§III-D's discussion (ii) covers "transferring a checkpoint to another
replica": the receiving replica verifies the checkpoint certificate, the
chain segment, and — when the chain does not start at genesis — the signed
deletes that justify its base.  This module turns that into a live
protocol so a node that was down (power cycle, maintenance) rejoins
without replaying the full history:

1. the lagging node notices stable checkpoints far beyond its execution
   point (f+1 distinct peers vouching, so a single liar cannot trigger
   bogus syncs) and sends a :class:`StateRequest` to one of them;
2. the peer answers with a :class:`StateReply` carrying its latest stable
   checkpoint certificate, the blocks from the requester's height, and its
   prune certificate;
3. the requester verifies everything offline and fast-forwards: chain,
   replica watermarks, and block builder move to the checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain, PruneCertificate
from repro.crypto.hashing import sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.util.errors import ChainError
from repro.wire.codec import Reader, Writer

_UNSIGNED = b"\x00" * SIGNATURE_SIZE
_DOMAIN_STATE_REQ = b"statesync/request"
_DOMAIN_STATE_REP = b"statesync/reply"


@dataclass(frozen=True)
class StateRequest:
    """A lagging replica asks a peer for everything above ``have_height``."""

    requester_id: str
    have_height: int
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.requester_id.encode(), self.have_height.to_bytes(8, "big"),
                      domain=_DOMAIN_STATE_REQ)

    def signed(self, keypair: KeyPair) -> "StateRequest":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.requester_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.requester_id)
        writer.put_uint(self.have_height)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "StateRequest":
        reader = Reader(data)
        requester_id = reader.get_str()
        have_height = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(requester_id=requester_id, have_height=have_height, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class StateReply:
    """Checkpointed state: certificate, chain segment, prune justification."""

    replica_id: str
    checkpoint: CheckpointCertificate
    blocks: tuple[Block, ...]
    prune_base_height: int
    prune_base_hash: bytes
    prune_signatures: tuple[tuple[str, bytes], ...]  # (dc id, signature)
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.replica_id.encode(), self.checkpoint.encode(),
                      *[block.block_hash for block in self.blocks],
                      domain=_DOMAIN_STATE_REP)

    def signed(self, keypair: KeyPair) -> "StateReply":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def prune_certificate(self) -> PruneCertificate | None:
        if not self.prune_signatures:
            return None
        return PruneCertificate(
            base_height=self.prune_base_height,
            base_block_hash=self.prune_base_hash,
            delete_signatures=dict(self.prune_signatures),
        )

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_bytes(self.checkpoint.encode())
        writer.put_list(list(self.blocks), lambda w, b: w.put_bytes(b.encode()))
        writer.put_uint(self.prune_base_height)
        writer.put_bytes(self.prune_base_hash)
        writer.put_list(list(self.prune_signatures),
                        lambda w, p: (w.put_str(p[0]), w.put_fixed(p[1], SIGNATURE_SIZE)))
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "StateReply":
        reader = Reader(data)
        replica_id = reader.get_str()
        checkpoint = CheckpointCertificate.decode(reader.get_bytes())
        blocks = reader.get_list(lambda r: Block.decode(r.get_bytes()))
        prune_base_height = reader.get_uint()
        prune_base_hash = reader.get_bytes()
        prune_signatures = reader.get_list(
            lambda r: (r.get_str(), r.get_fixed(SIGNATURE_SIZE))
        )
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, checkpoint=checkpoint, blocks=tuple(blocks),
                   prune_base_height=prune_base_height, prune_base_hash=prune_base_hash,
                   prune_signatures=tuple(prune_signatures), signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


class StateSync:
    """Per-node state-sync engine, driven by the node's message dispatch."""

    def __init__(
        self,
        env,
        bft_config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        chain: Blockchain,
        replica,
        lag_blocks: int = 3,
    ) -> None:
        self.env = env
        self.bft_config = bft_config
        self.keypair = keypair
        self.keystore = keystore
        self.chain = chain
        self.replica = replica
        self.lag_blocks = lag_blocks
        #: Checkpoint seqs observed per peer (f+1 rule against liars).
        self._observed_ahead: dict[str, int] = {}
        self._sync_in_flight = False
        self.syncs_completed = 0
        self.syncs_rejected = 0

    # -- lag detection -----------------------------------------------------------

    def observe_checkpoint(self, src: str, checkpoint: Checkpoint) -> None:
        """Called by the node for every checkpoint message it sees.

        Lag is measured against the *chain*, not the replica's watermark:
        a quorum of peer checkpoints advances the watermark on its own,
        but only a state transfer can backfill the missing blocks.
        """
        if checkpoint.block_height <= self.chain.height + self.lag_blocks:
            return
        # Only a verified member checkpoint may count as a voucher: the
        # f+1 rule below is meaningless if a non-member (or a forger) can
        # populate the vouching map.
        if not self.bft_config.is_member(src) or not checkpoint.verify(self.keystore):
            return
        self._observed_ahead[src] = max(self._observed_ahead.get(src, 0),
                                        checkpoint.block_height)
        vouching = [peer for peer, height in self._observed_ahead.items()
                    if height > self.chain.height + self.lag_blocks]
        if len(vouching) >= self.bft_config.f + 1 and not self._sync_in_flight:
            self._sync_in_flight = True
            target = sorted(vouching)[0]
            request = StateRequest(
                requester_id=self.env.node_id, have_height=self.chain.height,
            ).signed(self.keypair)
            self.env.send(target, request)

    # -- serving -------------------------------------------------------------------

    def handle_request(self, src: str, request: StateRequest) -> None:
        if not request.verify(self.keystore):
            return
        checkpoint = self.replica.latest_stable_checkpoint()
        if checkpoint is None:
            return
        first = max(request.have_height + 1, self.chain.base_height)
        last = min(checkpoint.block_height, self.chain.height)
        if request.have_height < self.chain.base_height:
            # The requester is behind our prune point: ship our whole chain
            # (base included) plus the prune certificate that justifies it.
            first = self.chain.base_height
        blocks = tuple(self.chain.blocks_in_range(first, last)) if first <= last else ()
        prune = self.chain.prune_certificate
        reply = StateReply(
            replica_id=self.env.node_id,
            checkpoint=checkpoint,
            blocks=blocks,
            prune_base_height=prune.base_height if prune else 0,
            prune_base_hash=prune.base_block_hash if prune else b"",
            prune_signatures=tuple(prune.delete_signatures.items()) if prune else (),
        ).signed(self.keypair)
        self.env.send(request.requester_id, reply)

    # -- applying ---------------------------------------------------------------------

    def handle_reply(self, src: str, reply: StateReply) -> bool:
        """Apply one state reply; returns True when the chain advanced.

        The signature checks run before *any* state is touched: a forged
        reply must not clear the in-flight latch (stalling or re-arming a
        genuine sync) and must not reach the chain-adoption path.
        """
        if not reply.verify(self.keystore):
            self.syncs_rejected += 1
            return False
        if not reply.checkpoint.verify(self.keystore, self.bft_config):
            self.syncs_rejected += 1
            return False
        self._sync_in_flight = False
        if reply.checkpoint.block_height <= self.chain.height:
            return False  # stale: the chain already covers this checkpoint
        try:
            self._apply(reply)
        except ChainError:
            self.syncs_rejected += 1
            return False
        self.syncs_completed += 1
        return True

    def _apply(self, reply: StateReply) -> None:
        blocks = sorted(reply.blocks, key=lambda b: b.height)
        if blocks and blocks[0].height != self.chain.height + 1:
            # Non-contiguous with our chain — either the peer pruned past our
            # head (its base is ahead of us) or the segment overlaps what we
            # have.  Verify the candidate standalone (including its prune
            # certificate when it does not start at genesis), then adopt it.
            candidate = Blockchain.from_blocks(
                blocks, chain_id=self.chain.chain_id,
                prune_certificate=reply.prune_certificate(),
            )
            head = candidate.block_at(reply.checkpoint.block_height)
            if head.block_hash != reply.checkpoint.block_hash:
                raise ChainError("transferred chain does not match the checkpoint")
            self.chain._blocks = candidate._blocks
            self.chain.prune_certificate = candidate.prune_certificate
        else:
            # Incremental: extend our own chain block by block (append verifies).
            for block in blocks:
                self.chain.append(block)
            if self.chain.height < reply.checkpoint.block_height:
                raise ChainError("state reply did not reach the checkpoint height")
            head = self.chain.block_at(reply.checkpoint.block_height)
            if head.block_hash != reply.checkpoint.block_hash:
                raise ChainError("synced chain head does not match the checkpoint")
        self.replica.fast_forward(reply.checkpoint)
