"""ZugChain layer envelopes: backup broadcasts and primary forwards.

``ZugBroadcast`` is the message a backup sends to all replicas when its
soft timeout expires (Alg. 1 ln. 24); ``ZugForward`` is the relay of a
received broadcast to the primary (ln. 32), which defeats a faulty
broadcaster that omits the primary (fault case iv).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wire.codec import Reader, Writer
from repro.wire.messages import SignedRequest


@dataclass(frozen=True)
class ZugBroadcast:
    """Backup's broadcast of an unlogged request to the whole group."""

    request: SignedRequest

    def encode(self) -> bytes:
        return self.request.encode()

    @classmethod
    def decode(cls, data: bytes) -> "ZugBroadcast":
        return cls(request=SignedRequest.decode(data))

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ZugForward:
    """Relay of a broadcast to the primary (preserves the origin's id/signature)."""

    request: SignedRequest
    forwarder_id: str

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_bytes(self.request.encode())
        writer.put_str(self.forwarder_id)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ZugForward":
        reader = Reader(data)
        request = SignedRequest.decode(reader.get_bytes())
        forwarder_id = reader.get_str()
        reader.expect_end()
        return cls(request=request, forwarder_id=forwarder_id)

    def encoded_size(self) -> int:
        return len(self.encode())
