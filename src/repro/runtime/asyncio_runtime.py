"""Real-transport runtime: the same sans-IO nodes over asyncio TCP.

The protocol stack (ZugChain layer, PBFT replica, block builder) is the
identical code that runs in the deterministic simulator — only the
:class:`~repro.bft.env.Env` implementation changes.  This runtime exists
to demonstrate that the sans-IO design is deployable: nodes listen on TCP
sockets, messages travel length-prefixed with their registry tags
(:mod:`repro.wire.tags`), and timers come from the event loop.

Emission semantics (sorted recipients, broadcast self-exclusion, drop and
timer counters) come from :class:`~repro.runtime.base.BaseEnv`, so a TCP
broadcast fans out in exactly the order the simulator uses — not dict
insertion order — and undeliverable copies are counted, never silent.

Connections carry a one-line hello (``zc1 <node-id>\\n``) identifying the
sender; message authenticity rests on the protocol-level signatures, as on
the train Ethernet.
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

import repro.wire.tags  # noqa: F401  (registers all message types)
from repro.obs.causal import CausalContext
from repro.obs.metrics import ClusterMetrics, MetricsRegistry, fold_env_counters
from repro.runtime.base import BaseEnv, EnvTimer
from repro.util.errors import CodecError
from repro.wire.registry import decode_message, encode_message

_HELLO_PREFIX = b"zc1 "
_MAX_FRAME = 64 * 1024 * 1024
#: High bit of the 4-byte length prefix: the frame starts with a causal
#: frame-header extension (a registered CausalContext, self-delimiting via
#: the codec) before the message body.  _MAX_FRAME keeps legitimate
#: lengths well below the flag bit, and untraced runs never set it, so
#: the wire format is byte-identical to the pre-causal one when tracing
#: is off.
_CAUSAL_FLAG = 0x8000_0000


class AsyncioEnv(BaseEnv):
    """Env adapter over asyncio TCP connections.

    The event loop is resolved lazily with ``asyncio.get_running_loop()``
    (or passed explicitly for tests), and ``now()`` reports seconds since
    the env first read the clock — zero-based and monotonic, like the
    simulator's virtual clock, so protocol timestamps are comparable
    across runtimes.
    """

    def __init__(
        self,
        node_id: str,
        peers: dict[str, tuple[str, int]],
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        super().__init__(node_id)
        self._peers = dict(peers)
        self._writers: dict[str, asyncio.StreamWriter] = {}
        # Serializes connect_all against concurrent callers: the dial/hello
        # sequence awaits mid-update, so _writers check-then-set must not
        # interleave (lock construction is loop-free since Python 3.10).
        self._conn_lock = asyncio.Lock()
        self._loop = loop
        self._epoch: float | None = None
        #: Inbound frames whose body failed to decode (stream stays aligned).
        self.decode_errors = 0
        #: Inbound frames over the size cap (connection is dropped).
        self.oversize_frames = 0

    @property
    def send_errors(self) -> int:
        """Undeliverable outbound copies (legacy alias for counters.drops)."""
        return self.counters.drops

    def _running_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    def now(self) -> float:
        loop = self._running_loop()
        if self._epoch is None:
            self._epoch = loop.time()
        return loop.time() - self._epoch

    # -- transport hooks -----------------------------------------------------

    def _peer_ids(self) -> Iterable[str]:
        return self._peers.keys()

    def _transport_emit(
        self, dsts: tuple[str, ...], message: Any, ctx: CausalContext
    ) -> None:
        if not dsts:
            return
        frame = encode_message(message)
        if self.causal.carry:
            frame = encode_message(ctx) + frame
            wire = (len(frame) | _CAUSAL_FLAG).to_bytes(4, "big") + frame
        else:
            wire = len(frame).to_bytes(4, "big") + frame
        for dst in dsts:
            writer = self._writers.get(dst)
            if writer is None or writer.is_closing():
                self._note_drop()
                continue
            writer.write(wire)

    def _transport_schedule(self, delay: float, timer: EnvTimer) -> asyncio.TimerHandle:
        return self._running_loop().call_later(delay, timer.fire)

    def _transport_cancel(self, handle: asyncio.TimerHandle) -> None:
        handle.cancel()

    # -- connections ---------------------------------------------------------

    async def connect_all(self) -> None:
        """Open outgoing connections to every peer (call once all listen).

        Safe to call concurrently: the lock makes the ``peer_id in
        self._writers`` check and the eventual store atomic per call, so
        two racing callers cannot dial the same peer twice.
        """
        async with self._conn_lock:
            for peer_id in sorted(self._peers):
                if peer_id == self._node_id or peer_id in self._writers:
                    continue
                host, port = self._peers[peer_id]
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(_HELLO_PREFIX + self._node_id.encode() + b"\n")
                    await writer.drain()
                except BaseException:
                    # Cancellation or a refused hello must not leak the
                    # half-open socket.
                    writer.close()
                    raise
                self._writers[peer_id] = writer

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()


@dataclass
class _Hosted:
    node: Any
    env: AsyncioEnv
    server: asyncio.AbstractServer


class AsyncioCluster:
    """N ZugChain nodes on localhost TCP, fed by an in-process bus source.

    The bus is local to each node in the real deployment too (every node
    reads the MVB directly), so the feeder injects parsed requests via
    ``node.inject_request`` rather than tunnelling telegrams over TCP.
    """

    def __init__(self, node_factory: Callable[[AsyncioEnv], Any], n: int = 4,
                 host: str = "127.0.0.1", base_port: int = 0) -> None:
        self._factory = node_factory
        self.n = n
        self._host = host
        self._base_port = base_port
        self.hosted: dict[str, _Hosted] = {}
        self.peers: dict[str, tuple[str, int]] = {}
        self._handler_tasks: set[asyncio.Task] = set()
        self._started = False

    async def start(self) -> None:
        # The check-and-set happens before the first await, so it is atomic
        # on the event loop: a second (even concurrent) start() fails fast
        # instead of binding a duplicate server fleet.
        if self._started:
            raise RuntimeError("AsyncioCluster.start() called twice")
        self._started = True
        # Bind servers first (ephemeral ports when base_port == 0), building
        # into locals; the shared maps are published only when complete.
        peers: dict[str, tuple[str, int]] = {}
        hosted: dict[str, _Hosted] = {}
        for index in range(self.n):
            node_id = f"node-{index}"
            env = AsyncioEnv(node_id, peers)  # peers filled in below
            node = self._factory(env)
            server = await asyncio.start_server(
                self._connection_handler(node, env),
                self._host,
                self._base_port + index if self._base_port else 0,
            )
            port = server.sockets[0].getsockname()[1]
            peers[node_id] = (self._host, port)
            hosted[node_id] = _Hosted(node=node, env=env, server=server)
        self.peers.update(peers)
        self.hosted.update(hosted)
        # ... then connect everyone to everyone.
        for node_id, entry in hosted.items():
            entry.env._peers.update(peers)
            await entry.env.connect_all()

    def _connection_handler(self, node, env: AsyncioEnv):
        async def handle_connection(reader: asyncio.StreamReader,
                                    writer: asyncio.StreamWriter):
            task = asyncio.current_task()
            if task is not None:
                self._handler_tasks.add(task)
            try:
                hello = await reader.readline()
                if not hello.startswith(_HELLO_PREFIX):
                    writer.close()
                    return
                src = hello[len(_HELLO_PREFIX):].strip().decode()
                while True:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    carries_ctx = bool(length & _CAUSAL_FLAG)
                    length &= ~_CAUSAL_FLAG
                    if length > _MAX_FRAME:
                        # The frame cannot be skipped without reading it, so
                        # the connection is unrecoverable: count and drop it.
                        env.oversize_frames += 1
                        break
                    frame = await reader.readexactly(length)
                    try:
                        ctx = None
                        if carries_ctx:
                            ctx, consumed = decode_message(frame)
                            if not isinstance(ctx, CausalContext):
                                raise CodecError("causal header is not a CausalContext")
                            frame = frame[consumed:]
                        message, _ = decode_message(frame)
                    except CodecError:
                        # The bad frame is fully consumed; later frames on
                        # this stream are still well-delimited.
                        env.decode_errors += 1
                        continue
                    env.run_inbound(
                        ctx, lambda s=src, m=message: node.handle_message(s, m)
                    )
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            except asyncio.CancelledError:
                # Cluster shutdown (stop() cancels handlers); exiting quietly
                # keeps "Exception in callback" noise out of the loop's log.
                pass
            finally:
                if task is not None:
                    self._handler_tasks.discard(task)
                writer.close()
        return handle_connection

    def node(self, node_id: str):
        return self.hosted[node_id].node

    def nodes(self):
        return {node_id: hosted.node for node_id, hosted in self.hosted.items()}

    def envs(self) -> dict[str, AsyncioEnv]:
        return {node_id: hosted.env for node_id, hosted in self.hosted.items()}

    def aggregate_metrics(self) -> MetricsRegistry:
        """Cluster-level counter fold over every node's AsyncioEnv.

        Includes the transport-layer ``env.decode_errors`` and
        ``env.oversize_frames`` alongside the shared emission counters, so
        fault-injection tests can assert a bad frame surfaced cluster-wide.
        """
        cluster = ClusterMetrics()
        for node_id, hosted in sorted(self.hosted.items()):
            registry = cluster.node(node_id)
            replica = getattr(hosted.node, "replica", None)
            if replica is not None:
                registry.inc_from(asdict(replica.stats), prefix="bft.")
            layer = getattr(hosted.node, "layer", None)
            if layer is not None:
                registry.inc_from(asdict(layer.stats), prefix="layer.")
        merged = cluster.aggregate()
        fold_env_counters(merged, self.envs())
        return merged

    async def stop(self) -> None:
        for hosted in self.hosted.values():
            await hosted.env.close()
            hosted.server.close()
            await hosted.server.wait_closed()
        # Server-side handler tasks block in readexactly; reap them here so
        # event-loop teardown never has to cancel lingering tasks.
        tasks = list(self._handler_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
