"""Real-transport runtime: the same sans-IO nodes over asyncio TCP.

The protocol stack (ZugChain layer, PBFT replica, block builder) is the
identical code that runs in the deterministic simulator — only the
:class:`~repro.bft.env.Env` implementation changes.  This runtime exists
to demonstrate that the sans-IO design is deployable: nodes listen on TCP
sockets, messages travel length-prefixed with their registry tags
(:mod:`repro.wire.tags`), and timers come from the event loop.

Connections carry a one-line hello (``zc1 <node-id>\\n``) identifying the
sender; message authenticity rests on the protocol-level signatures, as on
the train Ethernet.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable

import repro.wire.tags  # noqa: F401  (registers all message types)
from repro.wire.registry import decode_message, encode_message

_HELLO_PREFIX = b"zc1 "
_MAX_FRAME = 64 * 1024 * 1024


class _LoopTimer:
    """Env timer backed by ``loop.call_later``."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._fired_or_cancelled = False

    def mark_fired(self) -> None:
        self._fired_or_cancelled = True

    @property
    def active(self) -> bool:
        return not self._fired_or_cancelled

    def cancel(self) -> None:
        self._fired_or_cancelled = True
        self._handle.cancel()


class AsyncioEnv:
    """Env implementation over asyncio TCP connections."""

    def __init__(self, node_id: str, peers: dict[str, tuple[str, int]]) -> None:
        self._node_id = node_id
        self._peers = dict(peers)
        self._writers: dict[str, asyncio.StreamWriter] = {}
        self._loop = asyncio.get_event_loop()
        self.send_errors = 0

    @property
    def node_id(self) -> str:
        return self._node_id

    def now(self) -> float:
        return self._loop.time()

    def set_timer(self, delay: float, callback: Callable[[], None]) -> _LoopTimer:
        timer_box: list[_LoopTimer] = []

        def _fire() -> None:
            if timer_box and timer_box[0].active:
                timer_box[0].mark_fired()
                callback()

        handle = self._loop.call_later(delay, _fire)
        timer = _LoopTimer(handle)
        timer_box.append(timer)
        return timer

    async def connect_all(self) -> None:
        """Open outgoing connections to every peer (call once all listen)."""
        for peer_id, (host, port) in self._peers.items():
            if peer_id == self._node_id or peer_id in self._writers:
                continue
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_HELLO_PREFIX + self._node_id.encode() + b"\n")
            await writer.drain()
            self._writers[peer_id] = writer

    def send(self, dst: str, message: Any) -> None:
        writer = self._writers.get(dst)
        if writer is None or writer.is_closing():
            self.send_errors += 1
            return
        frame = encode_message(message)
        writer.write(len(frame).to_bytes(4, "big") + frame)

    def broadcast(self, message: Any) -> None:
        frame = encode_message(message)
        wire = len(frame).to_bytes(4, "big") + frame
        for peer_id, writer in self._writers.items():
            if writer.is_closing():
                self.send_errors += 1
                continue
            writer.write(wire)

    async def close(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()


@dataclass
class _Hosted:
    node: Any
    env: AsyncioEnv
    server: asyncio.AbstractServer


class AsyncioCluster:
    """N ZugChain nodes on localhost TCP, fed by an in-process bus source.

    The bus is local to each node in the real deployment too (every node
    reads the MVB directly), so the feeder injects parsed requests via
    ``node.inject_request`` rather than tunnelling telegrams over TCP.
    """

    def __init__(self, node_factory: Callable[[AsyncioEnv], Any], n: int = 4,
                 host: str = "127.0.0.1", base_port: int = 0) -> None:
        self._factory = node_factory
        self.n = n
        self._host = host
        self._base_port = base_port
        self.hosted: dict[str, _Hosted] = {}
        self.peers: dict[str, tuple[str, int]] = {}

    async def start(self) -> None:
        # Bind servers first (ephemeral ports when base_port == 0) ...
        pending: list[tuple[str, AsyncioEnv]] = []
        for index in range(self.n):
            node_id = f"node-{index}"
            env = AsyncioEnv(node_id, self.peers)  # peers filled in below
            node = self._factory(env)
            server = await asyncio.start_server(
                self._connection_handler(node),
                self._host,
                self._base_port + index if self._base_port else 0,
            )
            port = server.sockets[0].getsockname()[1]
            self.peers[node_id] = (self._host, port)
            self.hosted[node_id] = _Hosted(node=node, env=env, server=server)
            pending.append((node_id, env))
        # ... then connect everyone to everyone.
        for node_id, env in pending:
            env._peers.update(self.peers)
            await env.connect_all()

    def _connection_handler(self, node):
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                hello = await reader.readline()
                if not hello.startswith(_HELLO_PREFIX):
                    writer.close()
                    return
                src = hello[len(_HELLO_PREFIX):].strip().decode()
                while True:
                    header = await reader.readexactly(4)
                    length = int.from_bytes(header, "big")
                    if length > _MAX_FRAME:
                        break
                    frame = await reader.readexactly(length)
                    message, _ = decode_message(frame)
                    node.handle_message(src, message)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            finally:
                writer.close()
        return handle

    def node(self, node_id: str):
        return self.hosted[node_id].node

    def nodes(self):
        return {node_id: hosted.node for node_id, hosted in self.hosted.items()}

    async def stop(self) -> None:
        for hosted in self.hosted.values():
            await hosted.env.close()
            hosted.server.close()
            await hosted.server.wait_closed()
