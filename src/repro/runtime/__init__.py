"""Simulation runtime: binds sans-IO protocol nodes to the DES substrate."""

from repro.runtime.costs import ETHERNET_OVERHEAD_BYTES, recv_cost, send_cost, wire_size
from repro.runtime.env import SimEnv
from repro.runtime.host import NodeHost

__all__ = [
    "SimEnv",
    "NodeHost",
    "send_cost",
    "recv_cost",
    "wire_size",
    "ETHERNET_OVERHEAD_BYTES",
]
