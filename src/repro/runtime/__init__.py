"""Simulation runtime: binds sans-IO protocol nodes to the DES substrate.

Only :mod:`repro.runtime.base` is imported eagerly: the cost model and the
adapters depend on the message modules, which depend on the Env interface
(:mod:`repro.bft.env`), which subclasses :class:`BaseEnv` from here.
Resolving the heavyweight names lazily (PEP 562) keeps that cycle open —
``repro.bft.env`` can import the base layer without pulling the cost model
in on top of a half-initialised message module.
"""

from repro.runtime.base import BaseEnv, EnvCounters, EnvTimer

__all__ = [
    "BaseEnv",
    "EnvCounters",
    "EnvTimer",
    "SimEnv",
    "NodeHost",
    "send_cost",
    "recv_cost",
    "wire_size",
    "ETHERNET_OVERHEAD_BYTES",
]

_LAZY = {
    "SimEnv": "repro.runtime.env",
    "NodeHost": "repro.runtime.host",
    "send_cost": "repro.runtime.costs",
    "recv_cost": "repro.runtime.costs",
    "wire_size": "repro.runtime.costs",
    "ETHERNET_OVERHEAD_BYTES": "repro.runtime.costs",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
