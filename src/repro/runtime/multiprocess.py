"""Multiprocess runtime: the same sans-IO nodes, one OS process per node.

The fourth :class:`~repro.runtime.base.BaseEnv` adapter.  Where
:class:`~repro.runtime.asyncio_runtime.AsyncioEnv` multiplexes every node
onto one event loop (concurrent I/O, still one core),
:class:`MultiprocessEnv` gives each node its own Python process: true
parallel execution across cores, with messages crossing process
boundaries as :mod:`repro.wire` frames (the identical registry encoding
the TCP runtime puts on sockets) over :mod:`multiprocessing` queues.

As everywhere else, the emission semantics — canonical sorted recipient
order, broadcast self-exclusion, fire-once timers, send/drop/timer
counters — come from :class:`~repro.runtime.base.BaseEnv`; this adapter
only supplies the physical half:

* ``_transport_emit`` encodes once and puts one ``(src, frame)`` tuple
  per recipient on that peer's inbox channel, counting a drop per
  closed/unknown channel;
* ``_transport_schedule`` arms a daemon :class:`threading.Timer` — real
  time, like the asyncio adapter, because a process-parallel cluster has
  no shared virtual clock.  Inside a cluster worker the timer does not
  call into the node directly: it *dispatches* the handle onto the
  node's inbox, so protocol code stays single-threaded per node;
* ``now()`` is zero-based monotonic per env, so protocol timestamps stay
  comparable across runtimes.

``tests/runtime/test_env_conformance.py`` runs the shared battery over
this adapter alongside SimEnv / RecordingEnv / AsyncioEnv, and
:class:`MultiprocessCluster` drives a full ZugChain consensus workload
across worker processes (``tests/runtime/test_multiprocess_cluster.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from queue import Empty
from typing import Any, Callable, Iterable

import repro.wire.tags  # noqa: F401  (registers all message types)
from repro.obs.causal import CausalContext, merge_shards
from repro.obs.trace import TraceEvent
from repro.runtime.base import BaseEnv, EnvTimer
from repro.util.errors import CodecError
from repro.wire.registry import decode_message, encode_message


class QueueChannel:
    """One peer's inbox endpoint: a put-only view of its queue.

    ``closed`` is a local flag, not distributed state — it marks peers
    this process has given up on (crashed worker, shutdown), after which
    emissions to them count as drops, mirroring the TCP adapter's
    ``writer.is_closing()`` check.
    """

    __slots__ = ("queue", "closed")

    def __init__(self, queue: Any) -> None:
        self.queue = queue
        self.closed = False

    def put(self, item: tuple[str, bytes, bytes]) -> None:
        src, frame, ctx_bytes = item
        self.queue.put(("msg", src, frame, ctx_bytes))


class MultiprocessEnv(BaseEnv):
    """Env adapter over per-node inbox channels between processes."""

    def __init__(
        self,
        node_id: str,
        channels: dict[str, QueueChannel],
        timer_dispatch: Callable[[EnvTimer], None] | None = None,
    ) -> None:
        super().__init__(node_id)
        self._channels = dict(channels)
        self._timer_dispatch = timer_dispatch
        self._epoch: float | None = None
        #: Inbound frames whose body failed to decode (set by the worker loop).
        self.decode_errors = 0

    def now(self) -> float:
        if self._epoch is None:
            self._epoch = time.monotonic()
        return time.monotonic() - self._epoch

    # -- transport hooks -----------------------------------------------------

    def _peer_ids(self) -> Iterable[str]:
        return self._channels.keys()

    def _transport_emit(
        self, dsts: tuple[str, ...], message: Any, ctx: CausalContext
    ) -> None:
        if not dsts:
            return
        frame = encode_message(message)
        # The context crosses the process boundary as the queue tuple's
        # third slot — registry-encoded like the TCP frame header, empty
        # when this env does not carry causality (untraced runs pay zero
        # extra bytes).
        ctx_bytes = encode_message(ctx) if self.causal.carry else b""
        for dst in dsts:
            channel = self._channels.get(dst)
            if channel is None or channel.closed:
                self._note_drop()
                continue
            channel.put((self._node_id, frame, ctx_bytes))

    def _transport_schedule(self, delay: float, timer: EnvTimer) -> threading.Timer:
        if self._timer_dispatch is None:
            fire: Callable[[], None] = timer.fire
        else:
            dispatch = self._timer_dispatch
            def fire() -> None:
                dispatch(timer)
        handle = threading.Timer(delay, fire)
        handle.daemon = True
        handle.start()
        return handle

    def _transport_cancel(self, handle: threading.Timer) -> None:
        handle.cancel()

    def close(self) -> None:
        for channel in self._channels.values():
            channel.closed = True


# ---------------------------------------------------------------------------
# Cluster: N ZugChain nodes, one process each, fed by an in-parent bus.
# ---------------------------------------------------------------------------

#: Worker inbox items are tagged tuples:
#:   ("msg", src, frame, ctx)     peer message (registry-encoded) + causal
#:                                context bytes ("" when untraced)
#:   ("inject", cycle, payload)   bus feeder: one consolidated MVB reading
#:   ("report",)                  progress probe → ("report", id, logged)
#:   ("stop",)                    finish → ("final", id, summary dict)
#:
#: Timers never cross the mp.Queue (their callbacks are closures, not
#: picklable — and they are same-process anyway): each worker multiplexes
#: its mp inbox and its timer fires through one *local* mailbox, so the
#: node runs strictly single-threaded.


@dataclass
class MultiprocessScenarioConfig:
    """Shape of one process-parallel cluster run (mirrors the TCP scenario)."""

    n: int = 4
    cycles: int = 12
    cycle_time_s: float = 0.03
    payload_bytes: int = 64
    block_size: int = 5
    soft_timeout_s: float = 0.5
    hard_timeout_s: float = 0.5
    settle_timeout_s: float = 30.0
    #: Run every worker with a per-process RecordingTracer shard; shards
    #: ride back in the final report and merge deterministically.
    trace: bool = False


@dataclass
class MultiprocessScenarioResult:
    """What a run observed, for CLI reporting and assertions."""

    requests_expected: int
    requests_logged: int              # min over nodes
    chain_heights: dict[str, int] = field(default_factory=dict)
    head_hashes: dict[str, str] = field(default_factory=dict)
    heads_consistent: bool = True
    completed: bool = True
    env_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)
    #: Canonical merge of the per-worker trace shards (empty untraced).
    trace_events: list[TraceEvent] = field(default_factory=list)


def _payload(cycle: int, size: int) -> bytes:
    stamp = b"mp-cycle-%d." % cycle
    if len(stamp) >= size:
        return stamp[: max(size, 1)]
    return stamp + b"x" * (size - len(stamp))


def _worker_main(node_id: str, ids: list[str], inboxes: dict[str, Any],
                 results: Any, config: MultiprocessScenarioConfig) -> None:
    """One node's process: build the stack, drain the inbox, report."""
    from repro.bft import BftConfig
    from repro.bus.nsdb import standard_jru_catalog
    from repro.core import ZugChainConfig, ZugChainNode
    from repro.crypto import HmacScheme, KeyStore
    from repro.wire import Request

    import queue as local_queue

    try:
        inbox = inboxes[node_id]
        # The single-consumer mailbox: the pump thread forwards mp-inbox
        # items into it, timer fires land in it directly, and the node
        # only ever runs on the loop below — one thread, no data races.
        mailbox: local_queue.Queue = local_queue.Queue()

        def pump() -> None:
            while True:
                item = inbox.get()
                mailbox.put(item)
                if item[0] == "stop":
                    return

        threading.Thread(target=pump, daemon=True).start()
        channels = {
            peer: QueueChannel(inboxes[peer]) for peer in ids if peer != node_id
        }
        env = MultiprocessEnv(
            node_id, channels,
            timer_dispatch=lambda timer: mailbox.put(("timer", timer)),
        )
        tracer = None
        if config.trace:
            from repro.obs.trace import RecordingTracer

            # Each worker records its own shard; binding the env's clock
            # gives events per-node identity (node#idx) so the parent's
            # merge needs no renumbering of causal references.  carry=True
            # makes emissions serialize their context into the queue tuple.
            tracer = RecordingTracer()
            tracer.bind_clock(node_id, env.causal)
            env.causal.carry = True
        scheme = HmacScheme()
        keystore = KeyStore(scheme=scheme)
        keypairs = {}
        for peer in ids:
            pair = scheme.derive_keypair(peer.encode())
            keypairs[peer] = pair
            keystore.register(peer, pair.public)
        node = ZugChainNode(
            env=env,
            bft_config=BftConfig(
                replica_ids=tuple(ids), checkpoint_interval=config.block_size,
            ),
            zug_config=ZugChainConfig(
                soft_timeout_s=config.soft_timeout_s,
                hard_timeout_s=config.hard_timeout_s,
                checkpoint_interval=config.block_size,
            ),
            keypair=keypairs[node_id],
            keystore=keystore,
            nsdb=standard_jru_catalog(),
            tracer=tracer,
        )

        while True:
            item = mailbox.get()
            tag = item[0]
            if tag == "msg":
                _, src, frame, ctx_bytes = item
                try:
                    ctx = None
                    if ctx_bytes:
                        decoded, _ = decode_message(ctx_bytes)
                        if isinstance(decoded, CausalContext):
                            ctx = decoded
                    message, _ = decode_message(frame)
                except CodecError:
                    env.decode_errors += 1
                    continue
                env.run_inbound(
                    ctx, lambda s=src, m=message: node.handle_message(s, m)
                )
            elif tag == "timer":
                item[1].fire()
            elif tag == "inject":
                _, cycle, payload = item
                node.inject_request(Request(
                    payload=payload,
                    bus_cycle=cycle,
                    recv_timestamp_us=int(cycle * config.cycle_time_s * 1e6),
                ))
            elif tag == "report":
                results.put(("report", node_id, node.requests_logged))
            elif tag == "stop":
                chain = node.chain
                results.put(("final", node_id, {
                    "requests_logged": node.requests_logged,
                    "chain_height": chain.height,
                    "head_hash": chain.head.block_hash.hex() if chain.height > 0 else "",
                    "env_counters": env.counters.snapshot(),
                    # The worker's trace shard rides home with the final
                    # report: TraceEvents are frozen scalar dataclasses,
                    # picklable across the queue by construction.
                    "trace": tracer.events if tracer is not None else [],
                }))
                return
    except Exception as exc:  # pragma: no cover - surfaced to the parent
        results.put(("error", node_id, repr(exc)))


class MultiprocessCluster:
    """N ZugChain nodes, one OS process each, joined by inbox queues.

    The bus is local to each node in the real deployment (every node
    reads the MVB directly), so the parent feeder injects the same
    consolidated reading into every worker's inbox — the multiprocess
    analogue of the TCP scenario's in-process feeder.
    """

    def __init__(self, config: MultiprocessScenarioConfig) -> None:
        self.config = config
        self.ids = [f"node-{i}" for i in range(config.n)]
        self._ctx = get_context("fork")
        self.inboxes = {node_id: self._ctx.Queue() for node_id in self.ids}
        self.results = self._ctx.Queue()
        self.processes: dict[str, Any] = {}

    def start(self) -> None:
        for node_id in self.ids:
            process = self._ctx.Process(
                target=_worker_main,
                args=(node_id, self.ids, self.inboxes, self.results, self.config),
                daemon=True,
            )
            process.start()
            self.processes[node_id] = process

    def run(self) -> MultiprocessScenarioResult:
        """Feed the bus, wait for every node to log every cycle, collect."""
        config = self.config
        self.start()
        try:
            for cycle in range(1, config.cycles + 1):
                payload = _payload(cycle, config.payload_bytes)
                for node_id in self.ids:
                    self.inboxes[node_id].put(("inject", cycle, payload))
                time.sleep(config.cycle_time_s)

            completed = self._wait_logged(config.cycles, config.settle_timeout_s)
            finals, errors = self._stop_and_collect()
        finally:
            self._terminate()

        heights = {i: finals.get(i, {}).get("chain_height", 0) for i in self.ids}
        heads = {i: finals.get(i, {}).get("head_hash", "") for i in self.ids}
        distinct_heads = {h for h in heads.values() if h}
        logged = [finals.get(i, {}).get("requests_logged", 0) for i in self.ids]
        trace_events: list[TraceEvent] = []
        if config.trace:
            trace_events = merge_shards(
                {i: finals.get(i, {}).get("trace", []) for i in self.ids}
            )
        return MultiprocessScenarioResult(
            requests_expected=config.cycles,
            requests_logged=min(logged) if logged else 0,
            chain_heights=heights,
            head_hashes=heads,
            heads_consistent=len(distinct_heads) <= 1,
            completed=completed and not errors,
            env_counters={
                i: finals.get(i, {}).get("env_counters", {}) for i in self.ids
            },
            errors=errors,
            trace_events=trace_events,
        )

    # -- internals -------------------------------------------------------------

    def _wait_logged(self, target: int, timeout_s: float) -> bool:
        deadline = time.monotonic() + timeout_s
        progress = {node_id: 0 for node_id in self.ids}
        while time.monotonic() < deadline:
            for node_id in self.ids:
                self.inboxes[node_id].put(("report",))
            expected = len(self.ids)
            seen = 0
            while seen < expected and time.monotonic() < deadline:
                try:
                    kind, node_id, value = self.results.get(timeout=1.0)
                except Empty:
                    break
                if kind == "error":
                    return False
                if kind == "report":
                    progress[node_id] = value
                    seen += 1
            if all(count >= target for count in progress.values()):
                return True
            time.sleep(0.05)
        return False

    def _stop_and_collect(self) -> tuple[dict[str, dict], dict[str, str]]:
        for node_id in self.ids:
            self.inboxes[node_id].put(("stop",))
        finals: dict[str, dict] = {}
        errors: dict[str, str] = {}
        deadline = time.monotonic() + self.config.settle_timeout_s
        while len(finals) + len(errors) < len(self.ids) and time.monotonic() < deadline:
            try:
                kind, node_id, value = self.results.get(timeout=1.0)
            except Empty:
                continue
            if kind == "final":
                finals[node_id] = value
            elif kind == "error":
                errors[node_id] = value
        return finals, errors

    def _terminate(self) -> None:
        for process in self.processes.values():
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)


def run_multiprocess_scenario(
    config: MultiprocessScenarioConfig,
) -> MultiprocessScenarioResult:
    """Run one ZugChain consensus workload with one process per node."""
    return MultiprocessCluster(config).run()
