"""Traceable ZugChain runs over the asyncio TCP runtime.

``python -m repro run --runtime tcp --trace out.jsonl`` lands here: a
real :class:`~repro.runtime.asyncio_runtime.AsyncioCluster` of HMAC-keyed
ZugChain nodes, an in-process bus feeder, and one shared
:class:`~repro.obs.trace.RecordingTracer` collecting the same event
taxonomy the simulator emits (``bus.rx``, ``bft.*``, ``req.logged``).

Timestamps are **debug-grade**: each node's ``env.now()`` is relative to
that env's first clock read, so cross-node deltas are approximate and a
re-run is never byte-identical (real sockets, real scheduler).  Ordering
guarantees that DO hold — the tracer's cluster-wide ``seq`` is strictly
increasing, each node's timestamps are monotonic, and a request's
``bus.rx`` precedes its ``req.logged`` on every node — are what the obs
tests pin.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.bft import BftConfig
from repro.bus.nsdb import standard_jru_catalog
from repro.core import ZugChainConfig, ZugChainNode
from repro.crypto import HmacScheme, KeyStore
from repro.obs.trace import Tracer
from repro.runtime.asyncio_runtime import AsyncioCluster, AsyncioEnv
from repro.wire import Request


@dataclass
class TcpScenarioConfig:
    """Shape of one TCP scenario run."""

    n: int = 4
    cycles: int = 20
    cycle_time_s: float = 0.02
    payload_bytes: int = 64
    block_size: int = 5
    soft_timeout_s: float = 0.4
    hard_timeout_s: float = 0.4
    settle_timeout_s: float = 30.0


@dataclass
class TcpScenarioResult:
    """What a run observed, for CLI reporting and assertions."""

    requests_expected: int
    requests_logged: int          # min over nodes
    chain_heights: dict[str, int] = field(default_factory=dict)
    heads_consistent: bool = True
    completed: bool = True        # every node logged every request in time


def _payload(cycle: int, size: int) -> bytes:
    stamp = b"tcp-cycle-%d." % cycle
    if len(stamp) >= size:
        return stamp[: max(size, 1)]
    return stamp + b"x" * (size - len(stamp))


def _node_factory(config: TcpScenarioConfig, tracer: Tracer | None):
    ids = [f"node-{i}" for i in range(config.n)]
    scheme = HmacScheme()
    keystore = KeyStore(scheme=scheme)
    keypairs = {}
    for node_id in ids:
        pair = scheme.derive_keypair(node_id.encode())
        keypairs[node_id] = pair
        keystore.register(node_id, pair.public)
    bft_config = BftConfig(
        replica_ids=tuple(ids), checkpoint_interval=config.block_size,
    )
    zug_config = ZugChainConfig(
        soft_timeout_s=config.soft_timeout_s,
        hard_timeout_s=config.hard_timeout_s,
        checkpoint_interval=config.block_size,
    )
    nsdb = standard_jru_catalog()

    def make_node(env: AsyncioEnv) -> ZugChainNode:
        return ZugChainNode(
            env=env,
            bft_config=bft_config,
            zug_config=zug_config,
            keypair=keypairs[env.node_id],
            keystore=keystore,
            nsdb=nsdb,
            tracer=tracer,
        )

    return make_node


async def _drive(cluster: AsyncioCluster, config: TcpScenarioConfig) -> None:
    for cycle in range(1, config.cycles + 1):
        request = Request(
            payload=_payload(cycle, config.payload_bytes),
            bus_cycle=cycle,
            recv_timestamp_us=int(cycle * config.cycle_time_s * 1e6),
        )
        # Every node reads the same bus data locally (MVB semantics).
        for node in cluster.nodes().values():
            node.inject_request(request)
        await asyncio.sleep(config.cycle_time_s)


async def _wait_until(predicate, timeout_s: float) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(0.05)
    return False


async def _scenario(config: TcpScenarioConfig,
                    tracer: Tracer | None) -> TcpScenarioResult:
    cluster = AsyncioCluster(_node_factory(config, tracer), n=config.n)
    await cluster.start()
    if tracer is not None and tracer.enabled and hasattr(tracer, "bind_clock"):
        # Bind every env's causal clock and turn on the frame-header carry
        # so contexts ride the TCP length-prefix extension.
        for node_id, env in cluster.envs().items():
            tracer.bind_clock(node_id, env.causal)
            env.causal.carry = True
    try:
        await _drive(cluster, config)
        completed = await _wait_until(
            lambda: all(
                node.requests_logged >= config.cycles
                for node in cluster.nodes().values()
            ),
            config.settle_timeout_s,
        )
        nodes = cluster.nodes()
        heights = {node_id: node.chain.height for node_id, node in nodes.items()}
        heads = {
            node.chain.head.block_hash
            for node in nodes.values() if node.chain.height > 0
        }
        return TcpScenarioResult(
            requests_expected=config.cycles,
            requests_logged=min(node.requests_logged for node in nodes.values()),
            chain_heights=heights,
            heads_consistent=len(heads) <= 1,
            completed=completed,
        )
    finally:
        await cluster.stop()


def run_tcp_scenario(config: TcpScenarioConfig,
                     tracer: Tracer | None = None) -> TcpScenarioResult:
    """Run one traced cluster scenario over real TCP sockets."""
    return asyncio.run(_scenario(config, tracer))
