"""The simulation :class:`~repro.bft.env.Env`: CPU-charged sends, kernel timers.

Outbound messages pass through the node's sequential protocol pipeline
(:class:`~repro.sim.resources.CpuAccount`) before reaching the network —
signing and serialization take CPU time, and a node that emits faster than
its pipeline drains builds a backlog.  This is the mechanism by which the
overloaded baseline's latency explodes at 32 ms bus cycles (Fig. 6) without
any scripted slowdown.

All emission semantics (canonical recipient ordering, self-exclusion,
counters, fire-once timers) live in :class:`~repro.runtime.base.BaseEnv`;
this adapter only supplies the physical half: charge the CPU pipeline one
``send_cost`` per emission (signing once, serializing once per copy — the
same accounting whether the emission is a unicast, a ``send_many`` fan-out,
or a broadcast), then put each copy on the simulated wire in order.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.causal import CausalContext
from repro.runtime.base import BaseEnv, EnvTimer
from repro.runtime.costs import send_cost, wire_size
from repro.sim.kernel import Kernel, Timer
from repro.sim.network import Network
from repro.sim.resources import CostModel, CpuAccount


class SimEnv(BaseEnv):
    """Env adapter for one simulated node."""

    def __init__(
        self,
        node_id: str,
        kernel: Kernel,
        network: Network,
        cpu: CpuAccount,
        model: CostModel,
    ) -> None:
        super().__init__(node_id)
        self._kernel = kernel
        self._network = network
        self._cpu = cpu
        self._model = model

    @property
    def cpu(self) -> CpuAccount:
        return self._cpu

    def now(self) -> float:
        return self._kernel.now

    # -- transport hooks -----------------------------------------------------

    def _peer_ids(self) -> Iterable[str]:
        return self._network.endpoints()

    def _transport_emit(
        self, dsts: tuple[str, ...], message: Any, ctx: CausalContext
    ) -> None:
        size = wire_size(message)
        cost = send_cost(message, self._model, copies=max(1, len(dsts)))

        def _put_on_wire() -> None:
            # ctx rides the delivery envelope via closure capture — the
            # in-process transport never serializes it.
            for dst in dsts:
                if not self._network.send(self._node_id, dst, message, size, ctx):
                    self._note_drop()

        self._cpu.submit(cost, _put_on_wire)

    def _transport_schedule(self, delay: float, timer: EnvTimer) -> Timer:
        return self._kernel.schedule(delay, timer.fire)

    def _transport_cancel(self, handle: Timer) -> None:
        handle.cancel()
