"""The simulation :class:`~repro.bft.env.Env`: CPU-charged sends, kernel timers.

Outbound messages pass through the node's sequential protocol pipeline
(:class:`~repro.sim.resources.CpuAccount`) before reaching the network —
signing and serialization take CPU time, and a node that emits faster than
its pipeline drains builds a backlog.  This is the mechanism by which the
overloaded baseline's latency explodes at 32 ms bus cycles (Fig. 6) without
any scripted slowdown.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.costs import send_cost, wire_size
from repro.sim.kernel import Kernel, Timer
from repro.sim.network import Network
from repro.sim.resources import CostModel, CpuAccount


class SimEnv:
    """Env implementation for one simulated node."""

    def __init__(
        self,
        node_id: str,
        kernel: Kernel,
        network: Network,
        cpu: CpuAccount,
        model: CostModel,
    ) -> None:
        self._node_id = node_id
        self._kernel = kernel
        self._network = network
        self._cpu = cpu
        self._model = model

    @property
    def node_id(self) -> str:
        return self._node_id

    @property
    def cpu(self) -> CpuAccount:
        return self._cpu

    def now(self) -> float:
        return self._kernel.now

    def send(self, dst: str, message: Any) -> None:
        size = wire_size(message)
        cost = send_cost(message, self._model, copies=1)
        self._cpu.submit(
            cost, lambda: self._network.send(self._node_id, dst, message, size)
        )

    def broadcast(self, message: Any) -> None:
        size = wire_size(message)
        copies = max(1, len(self._network.endpoints()) - 1)
        cost = send_cost(message, self._model, copies=copies)
        self._cpu.submit(
            cost, lambda: self._network.broadcast(self._node_id, message, size)
        )

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        return self._kernel.schedule(delay, callback)
