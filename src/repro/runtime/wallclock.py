"""Sanctioned wall-clock access for real-time measurement.

The determinism linter (DET001) bans wall-clock reads everywhere except
the runtime layer — simulated code must take time from ``env.now()``.
Benchmark harnesses genuinely measure wall time, so this module is the
one place that hands it out: callers *inject* these callables into
otherwise clock-free code (e.g. :class:`repro.sweep.bench.BenchRecorder`
takes a ``clock`` parameter), which keeps that code deterministic under
test (tests inject a fake) and honest in production.
"""

from __future__ import annotations

import time
from typing import Callable


def wall_timer() -> Callable[[], float]:
    """A monotonic high-resolution timer for wall-time measurement."""
    return time.perf_counter


def today_str() -> str:
    """Local date as ``YYYY-MM-DD`` — stamps benchmark artifact names."""
    return time.strftime("%Y-%m-%d")
