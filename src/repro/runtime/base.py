"""Canonical Env core: one emission path shared by every runtime adapter.

The sans-IO design promise (§IV: "only the Env implementation changes"
between the deterministic simulator and a real transport) only holds if
all Env implementations share one set of semantics.  :class:`BaseEnv`
owns exactly that shared half:

* **Emission** — ``send``/``send_many``/``broadcast`` all funnel into
  ``_emit(dsts, message)``, which puts recipients into canonical sorted
  order before the transport sees them.  Broadcast excludes the sender.
  No per-call-site ``sorted()`` is needed (or trusted) anywhere else.
* **Timers** — ``set_timer`` returns a uniform fire-once
  :class:`EnvTimer` (``active`` goes false on fire *or* cancel, firing a
  cancelled timer is a no-op, cancelling twice counts once), regardless
  of how the transport actually schedules the callback.
* **Accounting** — per-env :class:`EnvCounters` for sends, broadcasts,
  emitted copies, transport drops, and timer lifecycle events, so tests
  and operators read the same numbers on every runtime.

Transports supply only the physical half via four hooks:

=======================  ====================================================
hook                     contract
=======================  ====================================================
``now()``                monotonic clock in seconds, starting near 0
``_peer_ids()``          iterable of known node ids (may include self)
``_transport_emit``      deliver one message to an already-sorted recipient
                         tuple (charge CPU, frame bytes, append to a log);
                         call ``_note_drop()`` per undeliverable copy
``_transport_schedule``  arrange ``timer.fire`` after ``delay`` seconds and
                         return a transport handle (or ``None``);
                         ``_transport_cancel`` receives that handle back
=======================  ====================================================

``tests/runtime/test_env_conformance.py`` runs one shared battery over
every adapter so these semantics cannot drift apart again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.obs.causal import CausalClock, CausalContext
from repro.util.errors import ProtocolError

_PENDING = "pending"
_FIRED = "fired"
_CANCELLED = "cancelled"


@dataclass
class EnvCounters:
    """Per-env emission and timer accounting, identical across runtimes.

    ``sends`` counts recipient slots requested via ``send``/``send_many``
    and ``broadcasts`` counts ``broadcast`` calls; ``messages_emitted``
    counts the per-recipient copies actually handed to the transport, and
    ``drops`` the copies the transport could not deliver (crashed peer,
    missing connection, closing socket).
    """

    sends: int = 0
    broadcasts: int = 0
    messages_emitted: int = 0
    drops: int = 0
    timers_set: int = 0
    timers_fired: int = 0
    timers_cancelled: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "sends": self.sends,
            "broadcasts": self.broadcasts,
            "messages_emitted": self.messages_emitted,
            "drops": self.drops,
            "timers_set": self.timers_set,
            "timers_fired": self.timers_fired,
            "timers_cancelled": self.timers_cancelled,
        }


class EnvTimer:
    """Uniform fire-once timer handle.

    The discrete-event kernel's raw :class:`~repro.sim.kernel.Timer`
    stays ``active`` after firing and asyncio's ``TimerHandle`` has no
    liveness query at all; this wrapper gives protocol code one
    semantics everywhere: ``active`` is true exactly while the callback
    is still pending, and exactly one of fire/cancel ever takes effect.
    """

    __slots__ = ("deadline", "_callback", "_env", "_state", "_transport_handle")

    def __init__(self, env: "BaseEnv", deadline: float, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self._callback = callback
        self._env = env
        self._state = _PENDING
        self._transport_handle: Any = None

    @property
    def active(self) -> bool:
        return self._state == _PENDING

    def cancel(self) -> None:
        if self._state != _PENDING:
            return
        self._state = _CANCELLED
        self._env.counters.timers_cancelled += 1
        self._env._forget_timer(self)
        self._env._transport_cancel(self._transport_handle)

    def fire(self) -> None:
        """Run the callback if still pending (transports call this)."""
        if self._state != _PENDING:
            return
        self._state = _FIRED
        self._env.counters.timers_fired += 1
        self._env._forget_timer(self)
        self._callback()


class BaseEnv:
    """Shared Env semantics; subclasses are thin transport adapters."""

    def __init__(self, node_id: str) -> None:
        self._node_id = node_id
        self.counters = EnvCounters()
        #: The env's causal clock.  It always ticks — traced or not — so
        #: enabling tracing never changes anything protocol code can see;
        #: only the emission funnel and ``run_inbound`` may mutate it
        #: (enforced by zuglint DET008 outside the runtime layer).
        self.causal = CausalClock(node_id)
        #: Timers armed but not yet fired/cancelled.  Tracked so a fail-stop
        #: crash can tear down *everything* a dead node incarnation armed
        #: (``cancel_all_timers``) — a ghost timer firing into discarded
        #: protocol state would be a liveness bug the real system cannot have.
        self._active_timers: set[EnvTimer] = set()

    @property
    def node_id(self) -> str:
        return self._node_id

    # -- emission (canonical path) ------------------------------------------

    def send(self, dst: str, message: Any) -> None:
        """Send ``message`` to one recipient."""
        self.counters.sends += 1
        self._emit((dst,), message)

    def send_many(self, dsts: Iterable[str], message: Any) -> None:
        """Send one message to several recipients in canonical order.

        The transport sees a single emission (one signing charge, one
        frame encoding) fanned out to ``sorted(dsts)`` — use this for
        recipient loops like the data center's read/delete rounds so the
        ordering and accounting live here, not at the call site.
        """
        targets = tuple(dsts)
        self.counters.sends += len(targets)
        self._emit(targets, message)

    def broadcast(self, message: Any) -> None:
        """Send ``message`` to every known peer except this node."""
        self.counters.broadcasts += 1
        self._emit(self.broadcast_targets(), message)

    def broadcast_targets(self) -> tuple[str, ...]:
        """Canonical broadcast recipients: sorted peers, self excluded."""
        return tuple(
            peer for peer in sorted(self._peer_ids()) if peer != self._node_id
        )

    def _emit(self, dsts: Iterable[str], message: Any) -> None:
        """The single funnel every outbound message passes through.

        Every emission is stamped with a :class:`CausalContext` here —
        the only place contexts are minted — and the transport carries it
        in its envelope (never the wire body for in-process runtimes; an
        optional frame-header extension for TCP and multiprocess).
        """
        canonical = tuple(sorted(dsts))
        self.counters.messages_emitted += len(canonical)
        self._transport_emit(canonical, message, self.causal.stamp())

    def run_inbound(self, ctx: CausalContext | None, fn: Callable[[], None]) -> None:
        """Run an inbound-message handler under its causal context.

        Merges the sender's Lamport clock and scopes ``ctx`` as the
        current inbound context so events recorded during ``fn`` — and
        contexts stamped onto messages it emits — are causally linked to
        the delivery.  Transports call this around ``handle_message``.
        """
        clock = self.causal
        if ctx is not None:
            clock.merge(ctx)
        previous = clock.inbound
        clock.inbound = ctx
        try:
            fn()
        finally:
            clock.inbound = previous

    # -- timers --------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> EnvTimer:
        """Arm ``callback`` to run after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise ProtocolError(f"cannot arm a timer into the past (delay={delay})")
        timer = EnvTimer(self, self.now() + delay, callback)
        self.counters.timers_set += 1
        self._active_timers.add(timer)
        timer._transport_handle = self._transport_schedule(delay, timer)
        return timer

    def _forget_timer(self, timer: EnvTimer) -> None:
        self._active_timers.discard(timer)

    def cancel_all_timers(self) -> int:
        """Cancel every pending timer; returns how many were cancelled.

        Part of fail-stop semantics: when a node crashes, its armed
        timeouts (view-change escalation, soft/hard forwarding, sync
        retries) die with it.
        """
        pending = list(self._active_timers)
        for timer in pending:
            timer.cancel()
        return len(pending)

    def _note_drop(self) -> None:
        """Transports report each undeliverable copy here."""
        self.counters.drops += 1

    # -- transport adapter hooks ---------------------------------------------

    def now(self) -> float:
        raise NotImplementedError

    def _peer_ids(self) -> Iterable[str]:
        """Known node ids (self may be included; broadcast filters it)."""
        raise NotImplementedError

    def _transport_emit(
        self, dsts: tuple[str, ...], message: Any, ctx: CausalContext
    ) -> None:
        """Deliver ``message`` to each of the already-sorted ``dsts``.

        ``ctx`` is the emission's causal context; transports propagate it
        in their envelope (closure capture, frame header, queue slot) and
        surface it to the receiver's ``run_inbound``.
        """
        raise NotImplementedError

    def _transport_schedule(self, delay: float, timer: EnvTimer) -> Any:
        """Arrange for ``timer.fire`` to run after ``delay`` seconds."""
        raise NotImplementedError

    def _transport_cancel(self, handle: Any) -> None:
        """Undo ``_transport_schedule``; default assumes fire() guards."""
