"""Per-message CPU cost tables.

Maps each protocol message type to the crypto and codec work a node
performs to emit or ingest it.  Combined with the constants in
:class:`~repro.sim.resources.CostModel`, these tables are what produce the
latency/CPU numbers of Fig. 6/7 — the counts below follow directly from
the protocol definitions:

* a preprepare carries two signatures (the embedded signed request and the
  primary's own), so it costs two signs to emit and two verifies to ingest;
* vote messages (prepare/commit/checkpoint/reply) carry one signature;
* view changes carry one signature plus one per embedded prepared proof;
* request-bearing messages additionally hash their payload.
"""

from __future__ import annotations

from typing import Any

from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.linear import CommitCert, Vote
from repro.bft.messages import Checkpoint, Commit, NewView, PrePrepare, Prepare, ViewChange
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.statesync import StateReply, StateRequest
from repro.sim.resources import CostModel

#: Ethernet + IP + TCP framing per message on the consensus network.
ETHERNET_OVERHEAD_BYTES = 54


def wire_size(message: Any) -> int:
    """Bytes a message occupies on the wire, including framing."""
    return message.encoded_size() + ETHERNET_OVERHEAD_BYTES


def _payload_bytes(message: Any) -> int:
    """Size of the raw request payload carried by a message (0 if none)."""
    if isinstance(message, PrePrepare):
        return len(message.request.request.payload)
    if isinstance(message, (ZugBroadcast, ZugForward, ClientRequestWrapper)):
        return len(message.request.request.payload)
    return 0


def _signs_to_emit(message: Any) -> int:
    if isinstance(message, PrePrepare):
        return 2  # the signed request + the preprepare itself
    if isinstance(message, NewView):
        return 1
    if isinstance(message, ViewChange):
        return 1
    if isinstance(message, (Prepare, Commit, Checkpoint, Reply, Vote)):
        return 1
    if isinstance(message, CommitCert):
        return 0  # aggregates existing vote signatures; nothing new to sign
    if isinstance(message, (ZugBroadcast, ClientRequestWrapper)):
        return 1
    if isinstance(message, ZugForward):
        return 0  # pure relay: the origin's signature is reused
    if isinstance(message, (StateRequest, StateReply)):
        return 1
    return 0


def _verifies_to_ingest(message: Any) -> int:
    if isinstance(message, PrePrepare):
        return 2
    if isinstance(message, (Prepare, Commit, Checkpoint, Reply, Vote)):
        return 1
    if isinstance(message, CommitCert):
        return len(message.votes)
    if isinstance(message, ViewChange):
        return 1 + len(message.prepared)
    if isinstance(message, NewView):
        # The new-view signature, each embedded view change, each reproposal.
        return 1 + len(message.view_changes) + 2 * len(message.preprepares)
    if isinstance(message, (ZugBroadcast, ZugForward, ClientRequestWrapper)):
        return 1
    if isinstance(message, StateRequest):
        return 1
    if isinstance(message, StateReply):
        return 1 + len(message.checkpoint.signatures)
    return 0


def send_cost(message: Any, model: CostModel, copies: int = 1) -> float:
    """CPU seconds to emit ``message`` (``copies`` serializations, one signing)."""
    size = wire_size(message)
    cost = model.message_overhead_s
    cost += model.sign_s * _signs_to_emit(message)
    cost += model.serialize_cost(size) * max(1, copies)
    payload = _payload_bytes(message)
    if payload:
        cost += model.hash_cost(payload)
    return cost


def recv_cost(message: Any, model: CostModel) -> float:
    """CPU seconds to ingest ``message`` (deserialize, verify, hash)."""
    size = wire_size(message)
    cost = model.message_overhead_s
    cost += model.verify_s * _verifies_to_ingest(message)
    cost += model.serialize_cost(size)
    payload = _payload_bytes(message)
    if payload:
        cost += model.hash_cost(payload)
    return cost


def bus_parse_cost(cycle_wire_bytes: int, model: CostModel) -> float:
    """CPU seconds to parse one bus cycle's telegrams into a request."""
    return model.serialize_cost(cycle_wire_bytes) + model.hash_cost(cycle_wire_bytes)
