"""NodeHost: attaches a protocol node to the network and the bus.

Inbound messages are charged their verification/deserialization cost on the
node's protocol pipeline before the handler runs, preserving arrival order
per node.  Bus cycles charge parsing cost as background work (the bus
front end runs on its own core and does not delay ordering).
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.bus.frames import BusCycleData
from repro.bus.master import MvbMaster
from repro.bus.faults import ReceptionFaultConfig
from repro.runtime.costs import bus_parse_cost, recv_cost
from repro.sim.network import Network
from repro.sim.resources import CostModel, CpuAccount


class HostedNode(Protocol):
    """What the host needs from a node (ZugChainNode and BaselineNode both fit)."""

    id: str

    def handle_message(self, src: str, message: Any) -> None: ...

    def on_bus_cycle(self, cycle: BusCycleData) -> None: ...


class NodeHost:
    """Runtime binding of one node: network endpoint + bus subscription."""

    def __init__(
        self,
        node: HostedNode,
        network: Network,
        cpu: CpuAccount,
        model: CostModel,
    ) -> None:
        self.node = node
        self._network = network
        self._cpu = cpu
        self._model = model
        self.messages_received = 0
        self.inbox_bytes = 0  # messages received but not yet processed
        #: Incarnation number.  Deferred work (CPU-pipeline closures) captures
        #: the epoch at enqueue time and is dropped if the node crashed in
        #: between — a dead incarnation's half-processed inbox must not leak
        #: into its successor.
        self.epoch = 0
        network.register(node.id, self._deliver)

    def advance_epoch(self) -> None:
        """Invalidate all deferred work enqueued for the current incarnation."""
        self.epoch += 1
        self.inbox_bytes = 0

    def _deliver(self, src: str, message: Any, size: int) -> None:
        self.messages_received += 1
        # The network exposes the delivery's causal context only for the
        # duration of this callback; capture it for the deferred handler.
        ctx = self._network.inbound_context
        # Lazy verification: votes that can no longer change replica state
        # are discarded after a table lookup, skipping signature checks.
        replica = getattr(self.node, "replica", None)
        if replica is not None and replica.vote_is_redundant(message):
            cost = self._model.message_overhead_s + self._model.serialize_cost(size)
        else:
            cost = recv_cost(message, self._model)
        self.inbox_bytes += size
        epoch = self.epoch

        def _process() -> None:
            if self.epoch != epoch:
                return  # the node crashed after delivery; drop silently
            self.inbox_bytes -= size
            env = getattr(self.node, "env", None)
            if env is not None and hasattr(env, "run_inbound"):
                env.run_inbound(ctx, lambda: self.node.handle_message(src, message))
            else:
                self.node.handle_message(src, message)

        self._cpu.submit(cost, _process)

    def attach_bus(self, master: MvbMaster, faults: ReceptionFaultConfig | None = None) -> None:
        master.attach(self.node.id, self._on_bus_cycle, faults)

    def _on_bus_cycle(self, cycle: BusCycleData) -> None:
        # Parsing runs on the bus-facing core: charged, but off the ordering
        # pipeline, so reception never delays in-flight consensus.
        self._cpu.charge_background(bus_parse_cost(cycle.wire_size(), self._model))
        self.node.on_bus_cycle(cycle)
