"""ZugChain reproduction: blockchain-based juridical data recording for railways.

A from-scratch Python implementation of *ZugChain* (Rüsch et al., DSN
2022): a permissioned, PBFT-based blockchain that replaces a train's
centralized juridical recording unit, plus every substrate the paper's
evaluation depends on — an MVB bus simulator, a deterministic
discrete-event network/CPU model standing in for the M-COM testbed, the
traditional-client PBFT baseline, and the secure data-center export
protocol.

Quick start::

    from repro import ScenarioConfig, SimulatedCluster

    cluster = SimulatedCluster(ScenarioConfig(system="zugchain"))
    result = cluster.run(duration_s=60.0, warmup_s=5.0)
    print(result.summary_row())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
scripts that regenerate every figure and table of the paper's evaluation.
"""

from repro.scenarios import ScenarioConfig, ScenarioResult, SimulatedCluster
from repro.core import ZugChainConfig, ZugChainLayer, ZugChainNode, BaselineNode
from repro.bft import BftConfig, PbftReplica
from repro.chain import Block, Blockchain, BlockStore
from repro.export.scenario import ExportScenario, ExportScenarioConfig
from repro.jru import check_requirements, survival_probability

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "SimulatedCluster",
    "ZugChainConfig",
    "ZugChainLayer",
    "ZugChainNode",
    "BaselineNode",
    "BftConfig",
    "PbftReplica",
    "Block",
    "Blockchain",
    "BlockStore",
    "ExportScenario",
    "ExportScenarioConfig",
    "check_requirements",
    "survival_probability",
]
