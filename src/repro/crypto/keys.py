"""Key pairs, key stores, and the pluggable signature-scheme interface.

Every ZugChain node and every data center holds a key pair (§III-B, §III-D).
Protocol code signs and verifies through :class:`SignatureScheme`, never
touching the concrete algorithm, so tests and simulations can choose the
real Ed25519 implementation or the fast HMAC stand-in per run.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field

from repro.crypto import ed25519
from repro.util.errors import CryptoError

SIGNATURE_SIZE = 64
PUBLIC_KEY_SIZE = 32


class SignatureScheme:
    """Interface shared by all signature schemes."""

    name = "abstract"

    def derive_keypair(self, seed: bytes) -> "KeyPair":
        raise NotImplementedError

    def sign(self, secret: bytes, message: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        raise NotImplementedError


class Ed25519Scheme(SignatureScheme):
    """RFC 8032 Ed25519 from :mod:`repro.crypto.ed25519`."""

    name = "ed25519"

    def derive_keypair(self, seed: bytes) -> "KeyPair":
        secret = hashlib.sha256(b"ed25519-seed" + seed).digest()
        public = ed25519.secret_to_public(secret)
        return KeyPair(scheme=self, secret=secret, public=public)

    def sign(self, secret: bytes, message: bytes) -> bytes:
        return ed25519.sign(secret, message)

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        return ed25519.verify(public, message, signature)


class HmacScheme(SignatureScheme):
    """HMAC-SHA256 "signature" with Ed25519-shaped keys and signatures.

    Not an asymmetric scheme — the "public key" is a key identifier and
    verification recomputes the MAC from a shared derivation.  It exists so
    large deterministic simulations do not pay pure-Python Ed25519 wall-clock
    cost; simulated CPU charges are identical (:mod:`repro.sim.resources`).
    Signature and key sizes match Ed25519 so wire sizes are unchanged.
    """

    name = "hmac"

    def derive_keypair(self, seed: bytes) -> "KeyPair":
        secret = hashlib.sha256(b"hmac-seed" + seed).digest()
        # The "public key" commits to the secret; verify() re-derives the MAC
        # key from the public key, emulating public verifiability in-process.
        public = hashlib.sha256(b"hmac-public" + secret).digest()
        return KeyPair(scheme=self, secret=secret, public=public)

    def _mac_key(self, public: bytes) -> bytes:
        return hashlib.sha256(b"hmac-mac-key" + public).digest()

    def sign(self, secret: bytes, message: bytes) -> bytes:
        public = hashlib.sha256(b"hmac-public" + secret).digest()
        mac = hmac.new(self._mac_key(public), message, hashlib.sha256).digest()
        return mac + mac  # pad to 64 bytes, matching Ed25519 signature size

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        if len(signature) != SIGNATURE_SIZE:
            return False
        mac = hmac.new(self._mac_key(public), message, hashlib.sha256).digest()
        return hmac.compare_digest(signature, mac + mac)


@dataclass(frozen=True)
class KeyPair:
    """A node's or data center's signing identity."""

    scheme: SignatureScheme
    secret: bytes
    public: bytes

    def sign(self, message: bytes) -> bytes:
        return self.scheme.sign(self.secret, message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return self.scheme.verify(self.public, message, signature)


@dataclass
class KeyStore:
    """Registry of known public keys, indexed by participant id.

    Models the permissioned setup: participants are authenticated at startup
    (§II-B) and membership changes only during maintenance.
    """

    scheme: SignatureScheme
    _public_keys: dict[str, bytes] = field(default_factory=dict)

    def register(self, participant_id: str, public: bytes) -> None:
        if len(public) != PUBLIC_KEY_SIZE:
            raise CryptoError(f"public key for {participant_id!r} must be {PUBLIC_KEY_SIZE} bytes")
        existing = self._public_keys.get(participant_id)
        if existing is not None and existing != public:
            raise CryptoError(f"conflicting key registration for {participant_id!r}")
        self._public_keys[participant_id] = public

    def public_key(self, participant_id: str) -> bytes:
        try:
            return self._public_keys[participant_id]
        except KeyError:
            raise CryptoError(f"unknown participant {participant_id!r}") from None

    def known(self, participant_id: str) -> bool:
        return participant_id in self._public_keys

    def participants(self) -> list[str]:
        return sorted(self._public_keys)

    def verify(self, participant_id: str, message: bytes, signature: bytes) -> bool:
        """Verify ``signature`` by the registered key of ``participant_id``.

        Unknown participants verify as False rather than raising: a Byzantine
        sender can claim any id, and protocol code treats that as a bad
        signature, not a crash.
        """
        public = self._public_keys.get(participant_id)
        if public is None:
            return False
        return self.scheme.verify(public, message, signature)


def default_scheme(fast: bool = True) -> SignatureScheme:
    """Scheme selector used by scenario builders (fast HMAC by default)."""
    return HmacScheme() if fast else Ed25519Scheme()
