"""Cryptographic substrate: hashing, Merkle trees, signatures, key management.

The paper uses ``ring``'s Ed25519 on all protocol messages.  We provide two
interchangeable signature schemes behind one interface:

* :class:`~repro.crypto.keys.Ed25519Scheme` — a from-scratch RFC 8032
  implementation (validated against the RFC test vectors in the test suite);
* :class:`~repro.crypto.keys.HmacScheme` — an HMAC-SHA256 scheme with the
  same API, used by large simulations where pure-Python Ed25519 wall-clock
  cost would dominate.  Simulated CPU cost is charged identically for both
  (see :mod:`repro.sim.resources`), so performance results do not depend on
  which scheme executes.
"""

from repro.crypto.hashing import sha256, digest_hex, chain_hash, DOMAIN_BLOCK, DOMAIN_REQUEST, DOMAIN_CHECKPOINT
from repro.crypto.merkle import MerkleTree, merkle_root, verify_merkle_proof
from repro.crypto.keys import (
    KeyPair,
    KeyStore,
    SignatureScheme,
    Ed25519Scheme,
    HmacScheme,
    default_scheme,
)

__all__ = [
    "sha256",
    "digest_hex",
    "chain_hash",
    "DOMAIN_BLOCK",
    "DOMAIN_REQUEST",
    "DOMAIN_CHECKPOINT",
    "MerkleTree",
    "merkle_root",
    "verify_merkle_proof",
    "KeyPair",
    "KeyStore",
    "SignatureScheme",
    "Ed25519Scheme",
    "HmacScheme",
    "default_scheme",
]
