"""Pure-Python Ed25519 (RFC 8032).

The paper signs every protocol message with ``ring``'s Ed25519.  This module
is a from-scratch implementation of the same scheme, validated against the
RFC 8032 test vectors in ``tests/crypto/test_ed25519.py``.  It is correct but
slow (~ms per operation in CPython), so large simulations default to the
HMAC scheme in :mod:`repro.crypto.keys`; the simulated CPU *cost model*
charges ARM-calibrated Ed25519 times either way.
"""

from __future__ import annotations

import hashlib

from repro.util.errors import CryptoError

# Curve parameters for edwards25519 (RFC 8032 §5.1).
P = 2**255 - 19
L = 2**252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

_BY = 4 * pow(5, P - 2, P) % P
_BX_SQ = (_BY * _BY - 1) * pow(D * _BY * _BY + 1, P - 2, P) % P


def _sqrt_mod_p(value: int) -> int:
    """Square root modulo P (P ≡ 5 mod 8), per RFC 8032 decoding rules."""
    candidate = pow(value, (P + 3) // 8, P)
    if (candidate * candidate) % P == value % P:
        return candidate
    candidate = candidate * pow(2, (P - 1) // 4, P) % P
    if (candidate * candidate) % P == value % P:
        return candidate
    raise CryptoError("no square root exists")


_BX = _sqrt_mod_p(_BX_SQ)
if _BX % 2 != 0:
    _BX = P - _BX

# Points are extended homogeneous coordinates (X, Y, Z, T) with x=X/Z, y=Y/Z, T=XY/Z.
_BASE = (_BX, _BY, 1, (_BX * _BY) % P)
_IDENTITY = (0, 1, 1, 0)

Point = tuple[int, int, int, int]


def _point_add(a: Point, b: Point) -> Point:
    """Add two points (RFC 8032 §5.1.4, add-2008-hwcd-3)."""
    x1, y1, z1, t1 = a
    x2, y2, z2, t2 = b
    e1 = (y1 - x1) * (y2 - x2) % P
    e2 = (y1 + x1) * (y2 + x2) % P
    e3 = 2 * t1 * t2 % P * D % P
    e4 = 2 * z1 * z2 % P
    e5 = e2 - e1
    e6 = e4 - e3
    e7 = e4 + e3
    e8 = e2 + e1
    return (e5 * e6 % P, e7 * e8 % P, e6 * e7 % P, e5 * e8 % P)


def _point_mul(scalar: int, point: Point) -> Point:
    """Scalar multiplication via double-and-add."""
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(a: Point, b: Point) -> bool:
    x1, y1, z1, _ = a
    x2, y2, z2, _ = b
    if (x1 * z2 - x2 * z1) % P != 0:
        return False
    return (y1 * z2 - y2 * z1) % P == 0


def _point_compress(point: Point) -> bytes:
    x, y, z, _ = point
    zinv = pow(z, P - 2, P)
    x = x * zinv % P
    y = y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(data: bytes) -> Point:
    if len(data) != 32:
        raise CryptoError("compressed point must be 32 bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    if y >= P:
        raise CryptoError("point y-coordinate out of range")
    x_sq = (y * y - 1) * pow(D * y * y + 1, P - 2, P) % P
    try:
        x = _sqrt_mod_p(x_sq)
    except CryptoError as exc:
        raise CryptoError("invalid point encoding") from exc
    if x == 0 and sign:
        raise CryptoError("invalid point sign")
    if x % 2 != sign:
        x = P - x
    return (x, y, 1, (x * y) % P)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _secret_expand(secret: bytes) -> tuple[int, bytes]:
    if len(secret) != 32:
        raise CryptoError("Ed25519 secret key must be 32 bytes")
    digest = _sha512(secret)
    scalar = int.from_bytes(digest[:32], "little")
    scalar &= (1 << 254) - 8
    scalar |= 1 << 254
    return scalar, digest[32:]


def secret_to_public(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret key."""
    scalar, _ = _secret_expand(secret)
    return _point_compress(_point_mul(scalar, _BASE))


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    scalar, prefix = _secret_expand(secret)
    public = _point_compress(_point_mul(scalar, _BASE))
    r = int.from_bytes(_sha512(prefix + message), "little") % L
    r_point = _point_compress(_point_mul(r, _BASE))
    h = int.from_bytes(_sha512(r_point + public + message), "little") % L
    s = (r + h * scalar) % L
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check a 64-byte signature against a 32-byte public key."""
    if len(public) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except CryptoError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + public + message), "little") % L
    left = _point_mul(s, _BASE)
    right = _point_add(r_point, _point_mul(h, a_point))
    return _point_equal(left, right)
