"""Domain-separated SHA-256 hashing used throughout the blockchain.

Every hash context (block headers, request payloads, checkpoints) gets its
own domain tag so a digest produced in one context can never be replayed in
another — standard practice in production ledgers.
"""

from __future__ import annotations

import hashlib

DOMAIN_BLOCK = b"zugchain/block/v1"
DOMAIN_REQUEST = b"zugchain/request/v1"
DOMAIN_CHECKPOINT = b"zugchain/checkpoint/v1"

DIGEST_SIZE = 32


def sha256(*parts: bytes, domain: bytes = b"") -> bytes:
    """SHA-256 over the concatenation of ``parts`` under a domain tag.

    Each part is length-prefixed before hashing so the encoding is injective:
    ``sha256(b"ab", b"c")`` never collides with ``sha256(b"a", b"bc")``.
    """
    hasher = hashlib.sha256()
    hasher.update(len(domain).to_bytes(2, "big"))
    hasher.update(domain)
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def digest_hex(*parts: bytes, domain: bytes = b"") -> str:
    """Hex form of :func:`sha256`, for logs and reports."""
    return sha256(*parts, domain=domain).hex()


def chain_hash(previous: bytes, payload_digest: bytes, height: int, timestamp_us: int) -> bytes:
    """Hash linking a block to its predecessor.

    Binds the previous block hash, the Merkle root of the block payload,
    the height, and the block timestamp — the minimal header contents whose
    integrity the chain must protect.
    """
    return sha256(
        previous,
        payload_digest,
        height.to_bytes(8, "big"),
        timestamp_us.to_bytes(8, "big"),
        domain=DOMAIN_BLOCK,
    )
