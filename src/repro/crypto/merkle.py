"""Merkle trees over block payloads.

Blocks commit to their requests via a Merkle root, which lets the export
side later prove inclusion of a single request to an auditor without
shipping the whole block.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_TAG + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_TAG + left + right).digest()


EMPTY_ROOT = hashlib.sha256(b"zugchain/merkle/empty").digest()


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the leaf index and sibling hashes bottom-up."""

    index: int
    siblings: tuple[bytes, ...]


class MerkleTree:
    """Binary Merkle tree with second-preimage-resistant leaf/node tagging.

    Odd nodes at each level are promoted unpaired (Bitcoin-style duplication
    would allow mutation attacks; promotion does not).
    """

    def __init__(self, leaves: list[bytes]) -> None:
        self._leaf_count = len(leaves)
        self._levels: list[list[bytes]] = []
        level = [_hash_leaf(leaf) for leaf in leaves]
        if level:
            self._levels.append(level)
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    nxt.append(_hash_node(level[i], level[i + 1]))
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
                self._levels.append(level)

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    @property
    def root(self) -> bytes:
        if not self._levels:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < self._leaf_count:
            raise IndexError(f"leaf index {index} out of range 0..{self._leaf_count - 1}")
        siblings: list[bytes] = []
        pos = index
        for level in self._levels[:-1]:
            sibling_pos = pos ^ 1
            if sibling_pos < len(level):
                siblings.append(level[sibling_pos])
            pos //= 2
        return MerkleProof(index=index, siblings=tuple(siblings))


def merkle_root(leaves: list[bytes]) -> bytes:
    """Root of a Merkle tree over ``leaves`` (EMPTY_ROOT for no leaves)."""
    return MerkleTree(leaves).root


def verify_merkle_proof(leaf: bytes, proof: MerkleProof, root: bytes, leaf_count: int) -> bool:
    """Check that ``leaf`` is included at ``proof.index`` under ``root``.

    ``leaf_count`` is needed to reconstruct where unpaired promotions occur.
    """
    if not 0 <= proof.index < leaf_count:
        return False
    current = _hash_leaf(leaf)
    pos = proof.index
    width = leaf_count
    sibling_iter = iter(proof.siblings)
    while width > 1:
        sibling_pos = pos ^ 1
        if sibling_pos < width:
            try:
                sibling = next(sibling_iter)
            except StopIteration:
                return False
            if pos % 2 == 0:
                current = _hash_node(current, sibling)
            else:
                current = _hash_node(sibling, current)
        # unpaired node is promoted unchanged
        pos //= 2
        width = (width + 1) // 2
    if next(sibling_iter, None) is not None:
        return False
    return current == root
