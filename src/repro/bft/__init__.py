"""Byzantine fault tolerant agreement: a full PBFT implementation.

Comprises the ordering (preprepare/prepare/commit), checkpointing, and view
change subprotocols of Castro & Liskov's PBFT, exposing exactly the
interface of Table I that the ZugChain layer builds on:

* downcalls — ``propose(signed_request)`` and ``suspect(node_id)``;
* upcalls — ``decide(signed_request, sn)`` and ``new_primary(node_id)``.

A traditional PBFT *client* (used by the paper's baseline, where every node
forwards every bus request to the primary) lives in
:mod:`repro.bft.client`.
"""

from repro.bft.config import BftConfig
from repro.bft.messages import (
    Checkpoint,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    ViewChange,
)
from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.replica import PbftReplica
from repro.bft.client import PbftClient, ClientRequestWrapper
from repro.bft.env import Env, RecordingEnv

__all__ = [
    "BftConfig",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Checkpoint",
    "ViewChange",
    "NewView",
    "PreparedProof",
    "CheckpointCertificate",
    "PbftReplica",
    "PbftClient",
    "ClientRequestWrapper",
    "Env",
    "RecordingEnv",
]
