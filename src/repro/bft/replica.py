"""The PBFT replica: ordering, checkpointing, and view change.

Implements Castro & Liskov's protocol with the interface of Table I:

* ``propose(signed_request)`` — downcall; primary assigns a sequence number
  and broadcasts a preprepare;
* ``suspect()`` — downcall; vote to depose the current primary;
* ``on_decide(signed_request, sn)`` — upcall on totally ordered requests,
  delivered strictly in sequence order;
* ``on_new_primary(new_primary_id)`` — upcall after a completed view change.

Checkpoints are driven by the application (the ZugChain node creates one
per block, §III-C): ``record_checkpoint`` signs and broadcasts the
checkpoint message; once 2f+1 matching messages arrive the checkpoint is
stable, the message log below it is garbage collected, and the certificate
is retained for the export protocol.

Byzantine inputs (bad signatures, wrong view, non-primary preprepares,
conflicting digests, stale sequence numbers) are counted and dropped —
never raised — since faulty peers must not crash correct replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bft.checkpoint import CheckpointCertificate, CheckpointCollector
from repro.bft.config import BftConfig
from repro.bft.env import Env
from repro.bft.messages import (
    Checkpoint,
    Commit,
    DecideFetch,
    DecideProof,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    ViewChange,
)
from repro.crypto.keys import KeyPair, KeyStore
from repro.obs.trace import NULL_TRACER, Tracer
from repro.wire.messages import SignedRequest, null_request


@dataclass
class _Instance:
    """Ordering state of one (view, seq)."""

    preprepare: PrePrepare | None = None
    prepares: dict[str, Prepare] = field(default_factory=dict)
    commits: dict[str, Commit] = field(default_factory=dict)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


@dataclass
class ReplicaStats:
    """Per-replica protocol counters for tests and analysis."""

    proposals: int = 0
    decided: int = 0
    invalid_signatures: int = 0
    stale_messages: int = 0
    conflicting_preprepares: int = 0
    view_changes_completed: int = 0
    view_changes_abandoned: int = 0
    checkpoints_stable: int = 0
    gap_fetches_sent: int = 0
    gap_proofs_served: int = 0
    gap_seqs_filled: int = 0


class PbftReplica:
    """One PBFT replica bound to an :class:`~repro.bft.env.Env`."""

    #: Message types this backend consumes (used by node-level dispatch).
    MESSAGE_TYPES = (PrePrepare, Prepare, Commit, Checkpoint, ViewChange, NewView,
                     DecideFetch, DecideProof)

    def __init__(
        self,
        env: Env,
        config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        on_decide: Callable[[SignedRequest, int], None],
        on_new_primary: Callable[[str], None] | None = None,
        on_stable_checkpoint: Callable[[CheckpointCertificate], None] | None = None,
        on_preprepare_accepted: Callable[[bytes], None] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.keypair = keypair
        self.keystore = keystore
        self._on_decide = on_decide
        self._on_new_primary = on_new_primary or (lambda pid: None)
        self._on_stable_checkpoint = on_stable_checkpoint or (lambda cert: None)
        self._on_preprepare_accepted = on_preprepare_accepted or (lambda digest: None)
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.id = env.node_id
        self.view = 0
        self.in_view_change = False
        self._next_seq = 1       # next sequence the primary assigns
        self._next_exec = 1      # next sequence to execute
        self.last_stable_seq = 0
        self._instances: dict[int, _Instance] = {}
        self._pending_exec: dict[int, SignedRequest] = {}
        self._checkpoints = CheckpointCollector(config, keystore)
        self._view_changes: dict[int, dict[str, ViewChange]] = {}
        self._vc_timer = None
        self._gap_timer = None
        self._gap_attempt = 0
        self._log_bytes = 0
        self.stats = ReplicaStats()

    # -- role helpers -----------------------------------------------------------

    @property
    def primary_id(self) -> str:
        return self.config.primary_of_view(self.view)

    @property
    def is_primary(self) -> bool:
        return self.primary_id == self.id

    def log_size_bytes(self) -> int:
        """Approximate bytes held in the in-flight message log (for memory accounting)."""
        return self._log_bytes

    def stable_checkpoint(self, seq: int) -> CheckpointCertificate | None:
        return self._checkpoints.stable_at(seq)

    def latest_stable_checkpoint(self) -> CheckpointCertificate | None:
        return self._checkpoints.latest_stable()

    def stable_checkpoint_seqs(self) -> list[int]:
        return self._checkpoints.stable_seqs()

    def discard_checkpoints_below(self, seq: int) -> None:
        self._checkpoints.discard_below(seq)

    def fast_forward(self, certificate: CheckpointCertificate) -> None:
        """Adopt a verified stable checkpoint after state transfer.

        Execution resumes at the sequence following the checkpoint; the
        application state (blockchain) must already match — the state-sync
        engine verifies that before calling this.
        """
        # Idempotent: the watermark may already have advanced via a live
        # quorum of peer checkpoints — the execution pointer still needs
        # moving once the state transfer delivered the blocks.
        self._checkpoints.install(certificate)
        self.last_stable_seq = max(self.last_stable_seq, certificate.seq)
        self._next_exec = max(self._next_exec, certificate.seq + 1)
        self._next_seq = max(self._next_seq, certificate.seq + 1)
        self._pending_exec = {s: r for s, r in self._pending_exec.items()
                              if s > certificate.seq}
        self._garbage_collect(certificate.seq)
        self._execute_ready()

    def adopt_view(self, view: int) -> None:
        """Adopt a higher view learned out of band (state transfer).

        A replica recovering from a crash may have slept through several
        view changes; without catching up it would keep suspecting the old
        primary and open view changes no live quorum will ever close.  The
        guard is strictly monotonic — stale or equal views are ignored — so
        this can only move the replica forward, never roll it back.
        """
        if view <= self.view:
            return
        if self.in_view_change and self.tracer.enabled:
            self.tracer.emit("bft.viewchange.end", self.env.now(), self.id,
                             view=view)
        self.view = view
        self.in_view_change = False
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._view_changes = {
            v: votes for v, votes in self._view_changes.items() if v > view
        }
        self._on_new_primary(self.primary_id)

    # -- downcalls (Table I) ------------------------------------------------------

    def propose(self, request: SignedRequest) -> bool:
        """Primary downcall: assign a sequence number and broadcast a preprepare.

        Returns False when this replica is not the primary or is mid view
        change (callers such as the ZugChain layer then rely on timeouts).
        """
        if not self.is_primary or self.in_view_change:
            return False
        seq = max(self._next_seq, self.last_stable_seq + 1)
        if seq > self.last_stable_seq + self.config.watermark_window:
            return False  # watermark window full; wait for a checkpoint
        self._next_seq = seq + 1
        preprepare = PrePrepare(
            view=self.view, seq=seq, request=request, primary_id=self.id
        ).signed(self.keypair)
        self.stats.proposals += 1
        self._accept_preprepare(preprepare)
        self._broadcast_preprepare(preprepare)
        return True

    def _broadcast_preprepare(self, preprepare: PrePrepare) -> None:
        """Separated so Byzantine subclasses can delay or drop proposals."""
        self.env.broadcast(preprepare)

    def suspect(self) -> None:
        """Vote to depose the primary of the current view."""
        self._start_view_change(self.view + 1)

    def vote_is_redundant(self, message: Any) -> bool:
        """True when a vote no longer influences this replica's state.

        Real BFT implementations check relevance before paying signature
        verification: a prepare for an already-prepared instance, a commit
        for an already-committed one, or a checkpoint at or below the stable
        sequence number are discarded after a table lookup.  The runtime
        uses this to charge reduced ingest cost for such messages.
        """
        if isinstance(message, Prepare):
            if message.seq < self._next_exec:
                return True
            instance = self._instances.get(message.seq)
            return instance is not None and instance.prepared
        if isinstance(message, Commit):
            if message.seq < self._next_exec:
                return True
            instance = self._instances.get(message.seq)
            return instance is not None and instance.committed
        if isinstance(message, Checkpoint):
            return message.seq <= self.last_stable_seq
        return False

    # -- message dispatch ---------------------------------------------------------

    def on_message(self, src: str, message: Any) -> None:
        """Single entry point for all BFT protocol messages."""
        if isinstance(message, PrePrepare):
            self._on_preprepare(message)
        elif isinstance(message, Prepare):
            self._on_prepare(message)
        elif isinstance(message, Commit):
            self._on_commit(message)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message)
        elif isinstance(message, ViewChange):
            self._on_view_change(message)
        elif isinstance(message, NewView):
            self._on_new_view(message)
        elif isinstance(message, DecideFetch):
            self._on_decide_fetch(message)
        elif isinstance(message, DecideProof):
            self._on_decide_proof(message)
        # Unknown message types are ignored: a Byzantine peer may send junk.

    # -- ordering: preprepare / prepare / commit ------------------------------------

    def _instance(self, seq: int) -> _Instance:
        return self._instances.setdefault(seq, _Instance())

    def _in_watermarks(self, seq: int) -> bool:
        return self.last_stable_seq < seq <= self.last_stable_seq + self.config.watermark_window

    def _on_preprepare(self, preprepare: PrePrepare) -> None:
        if self.in_view_change or preprepare.view != self.view:
            self.stats.stale_messages += 1
            return
        if preprepare.primary_id != self.primary_id:
            self.stats.stale_messages += 1
            return
        if not self._in_watermarks(preprepare.seq):
            self.stats.stale_messages += 1
            return
        if not preprepare.verify(self.keystore) or not preprepare.request.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        instance = self._instance(preprepare.seq)
        if instance.preprepare is not None:
            if instance.preprepare.digest != preprepare.digest:
                # A primary proposing two different requests for one sequence
                # number is provably faulty.
                self.stats.conflicting_preprepares += 1
                self.suspect()
            return
        self._accept_preprepare(preprepare)
        prepare = Prepare(
            view=self.view, seq=preprepare.seq, digest=preprepare.digest,
            replica_id=self.id,
        ).signed(self.keypair)
        self._add_prepare(prepare)
        self.env.broadcast(prepare)

    def _accept_preprepare(self, preprepare: PrePrepare) -> None:
        instance = self._instance(preprepare.seq)
        instance.preprepare = preprepare
        self._log_bytes += preprepare.encoded_size()
        if self.tracer.enabled:
            self.tracer.emit(
                "bft.preprepare", self.env.now(), self.id,
                view=preprepare.view, seq=preprepare.seq,
                digest=preprepare.digest.hex(),
            )
        self._on_preprepare_accepted(preprepare.digest)
        # The primary's preprepare stands in for its prepare (PBFT rule).
        implicit = Prepare(
            view=preprepare.view, seq=preprepare.seq, digest=preprepare.digest,
            replica_id=preprepare.primary_id, signature=preprepare.signature,
        )
        instance.prepares.setdefault(preprepare.primary_id, implicit)
        self._check_prepared(preprepare.seq)

    def _on_prepare(self, prepare: Prepare) -> None:
        if self.in_view_change or prepare.view != self.view or not self._in_watermarks(prepare.seq):
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(prepare.replica_id) or not prepare.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        self._add_prepare(prepare)

    def _add_prepare(self, prepare: Prepare) -> None:
        instance = self._instance(prepare.seq)
        if prepare.replica_id not in instance.prepares:
            instance.prepares[prepare.replica_id] = prepare
            self._log_bytes += prepare.encoded_size()
        self._check_prepared(prepare.seq)

    def _check_prepared(self, seq: int) -> None:
        instance = self._instance(seq)
        if instance.prepared or instance.preprepare is None:
            return
        digest = instance.preprepare.digest
        matching = sum(
            1 for prep in instance.prepares.values() if prep.digest == digest
        )
        # Preprepare + 2f prepares (the primary's implicit prepare counts).
        if matching >= self.config.prepared_quorum + 1:
            instance.prepared = True
            if self.tracer.enabled:
                self.tracer.emit(
                    "bft.prepare", self.env.now(), self.id,
                    view=self.view, seq=seq, digest=digest.hex(),
                )
            commit = Commit(
                view=self.view, seq=seq, digest=digest, replica_id=self.id
            ).signed(self.keypair)
            self._add_commit(commit)
            self.env.broadcast(commit)

    def _on_commit(self, commit: Commit) -> None:
        if commit.view != self.view or not self._in_watermarks(commit.seq):
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(commit.replica_id) or not commit.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        self._add_commit(commit)

    def _add_commit(self, commit: Commit) -> None:
        instance = self._instance(commit.seq)
        if commit.replica_id not in instance.commits:
            instance.commits[commit.replica_id] = commit
            self._log_bytes += commit.encoded_size()
        self._check_committed(commit.seq)

    def _check_committed(self, seq: int) -> None:
        instance = self._instance(seq)
        if instance.committed or not instance.prepared or instance.preprepare is None:
            return
        digest = instance.preprepare.digest
        matching = sum(
            1 for com in instance.commits.values() if com.digest == digest
        )
        if matching >= self.config.quorum:
            instance.committed = True
            if self.tracer.enabled:
                self.tracer.emit(
                    "bft.commit", self.env.now(), self.id,
                    view=self.view, seq=seq, digest=digest.hex(),
                )
            self._pending_exec[seq] = instance.preprepare.request
            self._execute_ready()

    def _execute_ready(self) -> None:
        """Deliver decided requests strictly in sequence order."""
        while self._next_exec in self._pending_exec:
            seq = self._next_exec
            request = self._pending_exec.pop(seq)
            instance = self._instances.get(seq)
            if instance is not None:
                instance.executed = True
            self._next_exec = seq + 1
            self.stats.decided += 1
            self._on_decide(request, seq)
        self._update_gap_timer()

    # -- execution gap fill ----------------------------------------------------------

    def _update_gap_timer(self) -> None:
        """Arm stall detection while commits wait above an execution gap.

        Lost preprepares (or a view change discarding in-flight instances)
        can leave later sequence numbers committed in ``_pending_exec``
        while ``_next_exec`` never arrives.  Without repair the replica
        stalls forever, its checkpoint votes go missing, and — once every
        correct node carries a gap somewhere — no checkpoint reaches 2f+1
        again and the whole group wedges.
        """
        if self._pending_exec:
            if self._gap_timer is None or not self._gap_timer.active:
                delay = self.config.gap_fetch_timeout_s * (2 ** min(self._gap_attempt, 4))
                self._gap_timer = self.env.set_timer(delay, self._on_gap_timeout)
        else:
            if self._gap_timer is not None:
                self._gap_timer.cancel()
                self._gap_timer = None
            self._gap_attempt = 0

    def _on_gap_timeout(self) -> None:
        self._gap_timer = None
        if not self._pending_exec:
            self._gap_attempt = 0
            return
        first = self._next_exec
        last = min(max(self._pending_exec),
                   first + self.config.max_gap_fetch_span - 1)
        peers = [rid for rid in self.config.replica_ids if rid != self.id]
        if not peers:
            return
        # Round-robin the target: the first peer asked may be crashed,
        # partitioned, or itself missing the instances.
        target = peers[self._gap_attempt % len(peers)]
        fetch = DecideFetch(
            requester_id=self.id, first_seq=first, last_seq=last,
        ).signed(self.keypair)
        self.env.send(target, fetch)
        self.stats.gap_fetches_sent += 1
        self._gap_attempt += 1
        if self.tracer.enabled:
            self.tracer.emit("bft.gap.fetch", self.env.now(), self.id,
                             first_seq=first, last_seq=last, peer=target)
        self._update_gap_timer()

    def _on_decide_fetch(self, fetch: DecideFetch) -> None:
        if not self.config.is_member(fetch.requester_id) or fetch.requester_id == self.id:
            self.stats.stale_messages += 1
            return
        if fetch.last_seq < fetch.first_seq:
            self.stats.stale_messages += 1
            return
        if not fetch.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        last = min(fetch.last_seq,
                   fetch.first_seq + self.config.max_gap_fetch_span - 1)
        for seq in range(fetch.first_seq, last + 1):
            instance = self._instances.get(seq)
            if instance is None or not instance.committed or instance.preprepare is None:
                continue
            digest = instance.preprepare.digest
            commits = tuple(sorted(
                (c for c in instance.commits.values() if c.digest == digest),
                key=lambda c: c.replica_id,
            ))
            if len(commits) < self.config.quorum:
                continue
            proof = DecideProof(
                replica_id=self.id, preprepare=instance.preprepare,
                commits=commits,
            ).signed(self.keypair)
            self.env.send(fetch.requester_id, proof)
            self.stats.gap_proofs_served += 1

    def _on_decide_proof(self, proof: DecideProof) -> None:
        preprepare = proof.preprepare
        seq = preprepare.seq
        if seq < self._next_exec or seq <= self.last_stable_seq:
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(proof.replica_id) or not proof.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        if not preprepare.verify(self.keystore) or not preprepare.request.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        digest = preprepare.digest
        signers: set[str] = set()
        for commit in proof.commits:
            if commit.seq != seq or commit.digest != digest:
                self.stats.invalid_signatures += 1
                return
            if not self.config.is_member(commit.replica_id) or not commit.verify(self.keystore):
                self.stats.invalid_signatures += 1
                return
            signers.add(commit.replica_id)
        if len(signers) < self.config.quorum:
            self.stats.invalid_signatures += 1
            return
        instance = self._instance(seq)
        if instance.executed:
            return
        # The certificate outranks local state: 2f+1 commits on this digest
        # mean f+1 correct replicas committed it, and no conflicting digest
        # can ever gather the same quorum — a differing stored preprepare is
        # a leftover from a discarded view.
        if instance.preprepare is None or instance.preprepare.digest != digest:
            instance.preprepare = preprepare
            self._log_bytes += preprepare.encoded_size()
        for commit in proof.commits:
            if commit.replica_id not in instance.commits:
                instance.commits[commit.replica_id] = commit
                self._log_bytes += commit.encoded_size()
        newly_committed = not instance.committed
        instance.prepared = True
        instance.committed = True
        if newly_committed:
            self.stats.gap_seqs_filled += 1
            if self.tracer.enabled:
                self.tracer.emit("bft.gap.filled", self.env.now(), self.id,
                                 seq=seq, digest=digest.hex())
        self._pending_exec[seq] = preprepare.request
        self._execute_ready()

    # -- checkpointing ---------------------------------------------------------------

    def record_checkpoint(self, seq: int, block_height: int, block_hash: bytes,
                          state_digest: bytes) -> None:
        """Application downcall after building the block covering ``seq``."""
        checkpoint = Checkpoint(
            seq=seq, block_height=block_height, block_hash=block_hash,
            state_digest=state_digest, replica_id=self.id,
        ).signed(self.keypair)
        self._handle_checkpoint(checkpoint)
        self.env.broadcast(checkpoint)

    def _on_checkpoint(self, checkpoint: Checkpoint) -> None:
        if not self.config.is_member(checkpoint.replica_id):
            self.stats.stale_messages += 1
            return
        self._handle_checkpoint(checkpoint)

    def _handle_checkpoint(self, checkpoint: Checkpoint) -> None:
        certificate = self._checkpoints.add(checkpoint)
        if certificate is None:
            return
        self.stats.checkpoints_stable += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "ckpt.stable", self.env.now(), self.id,
                seq=certificate.seq, block_height=certificate.block_height,
            )
        if self.in_view_change and certificate.seq > self.last_stable_seq:
            # 2f+1 replicas signed state beyond our suspicion point: the
            # group is live in the current view — abandon the view change
            # (a wedged minority suspecter must not ignore progress forever).
            self.in_view_change = False
            self.stats.view_changes_abandoned += 1
            if self._vc_timer is not None:
                self._vc_timer.cancel()
                self._vc_timer = None
            if self.tracer.enabled:
                # The stall is over even though no new view was installed:
                # this node resumes ordering in the view it never left.
                self.tracer.emit("bft.viewchange.end", self.env.now(), self.id,
                                 view=self.view, abandoned=True)
        if certificate.seq > self.last_stable_seq:
            self.last_stable_seq = certificate.seq
            self._garbage_collect(certificate.seq)
        self._on_stable_checkpoint(certificate)

    def _garbage_collect(self, stable_seq: int) -> None:
        for seq in [s for s in self._instances if s <= stable_seq]:
            self._log_bytes -= self._instance_bytes(self._instances[seq])
            del self._instances[seq]
        self._log_bytes = max(0, self._log_bytes)

    @staticmethod
    def _instance_bytes(instance: _Instance) -> int:
        total = 0
        if instance.preprepare is not None:
            total += instance.preprepare.encoded_size()
        total += sum(p.encoded_size() for p in instance.prepares.values())
        total += sum(c.encoded_size() for c in instance.commits.values())
        return total

    # -- view change -------------------------------------------------------------------

    def _prepared_proofs(self) -> tuple[PreparedProof, ...]:
        # Executed-but-not-yet-stable instances are included on purpose:
        # a seq committed anywhere was prepared at 2f+1 replicas, and the
        # new primary must learn about it from *some* view change in its
        # quorum or it would plug the seq with a null request — which a
        # lagging backup would then execute in place of the real one.
        proofs = []
        for seq in sorted(self._instances):
            instance = self._instances[seq]
            if instance.prepared and instance.preprepare is not None:
                proofs.append(PreparedProof(
                    view=instance.preprepare.view,
                    seq=seq,
                    digest=instance.preprepare.digest,
                    request=instance.preprepare.request,
                ))
        return tuple(proofs)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        already_voted = any(
            self.id in votes for view, votes in self._view_changes.items() if view >= new_view
        )
        if already_voted:
            return
        self.in_view_change = True
        if self.tracer.enabled:
            self.tracer.emit("bft.viewchange.start", self.env.now(), self.id,
                             new_view=new_view)
        stable = self._checkpoints.latest_stable()
        view_change = ViewChange(
            new_view=new_view,
            last_stable_seq=self.last_stable_seq,
            stable_checkpoint_digest=stable.state_digest if stable else b"\x00" * 32,
            prepared=self._prepared_proofs(),
            replica_id=self.id,
        ).signed(self.keypair)
        self._view_changes.setdefault(new_view, {})[self.id] = view_change
        self.env.broadcast(view_change)
        self._arm_view_change_timer(new_view)
        self._maybe_assume_leadership(new_view)

    def _arm_view_change_timer(self, target_view: int) -> None:
        if self._vc_timer is not None:
            self._vc_timer.cancel()

        def _escalate() -> None:
            # The view change did not complete in time: vote for the next view.
            if self.in_view_change:
                self._start_view_change(target_view + 1)

        self._vc_timer = self.env.set_timer(self.config.view_change_timeout_s, _escalate)

    def _on_view_change(self, view_change: ViewChange) -> None:
        if view_change.new_view <= self.view:
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(view_change.replica_id) or not view_change.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        votes = self._view_changes.setdefault(view_change.new_view, {})
        votes[view_change.replica_id] = view_change
        # Liveness rule: join a view change once f+1 peers vote for it.
        if not self.in_view_change and len(votes) >= self.config.f + 1:
            self._start_view_change(view_change.new_view)
        self._maybe_assume_leadership(view_change.new_view)

    def _maybe_assume_leadership(self, new_view: int) -> None:
        if self.config.primary_of_view(new_view) != self.id:
            return
        if new_view <= self.view:
            return
        votes = self._view_changes.get(new_view, {})
        if len(votes) < self.config.quorum:
            return
        view_changes = tuple(sorted(votes.values(), key=lambda vc: vc.replica_id))
        preprepares = self._new_view_preprepares(new_view, view_changes)
        new_view_msg = NewView(
            view=new_view, view_changes=view_changes, preprepares=preprepares,
            primary_id=self.id,
        ).signed(self.keypair)
        self.env.broadcast(new_view_msg)
        self._enter_view(new_view, preprepares)

    def _new_view_preprepares(
        self, new_view: int, view_changes: tuple[ViewChange, ...]
    ) -> tuple[PrePrepare, ...]:
        """Re-propose the highest-view prepared request per sequence number."""
        min_stable = max(vc.last_stable_seq for vc in view_changes)
        best: dict[int, PreparedProof] = {}
        for vc in view_changes:
            for proof in vc.prepared:
                if proof.seq <= min_stable:
                    continue
                current = best.get(proof.seq)
                if current is None or proof.view > current.view:
                    best[proof.seq] = proof
        preprepares = []
        top = max(best) if best else min_stable
        for seq in range(min_stable + 1, top + 1):
            proof = best.get(seq)
            if proof is not None:
                request = proof.request
            else:
                # No prepared proof anywhere in the quorum: nothing can have
                # committed at this seq, so plug the hole with a null request
                # (PBFT's gap rule) — otherwise in-order execution stalls
                # forever on a number nobody will ever propose again.
                request = SignedRequest.create(
                    null_request(seq), self.id, self.keypair
                )
            preprepares.append(PrePrepare(
                view=new_view, seq=seq, request=request, primary_id=self.id,
            ).signed(self.keypair))
        return tuple(preprepares)

    def _on_new_view(self, new_view_msg: NewView) -> None:
        if new_view_msg.view <= self.view:
            self.stats.stale_messages += 1
            return
        if new_view_msg.primary_id != self.config.primary_of_view(new_view_msg.view):
            self.stats.stale_messages += 1
            return
        if not new_view_msg.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        signers = {vc.replica_id for vc in new_view_msg.view_changes
                   if vc.new_view == new_view_msg.view and vc.verify(self.keystore)}
        if len(signers) < self.config.quorum:
            self.stats.invalid_signatures += 1
            return
        self._enter_view(new_view_msg.view, new_view_msg.preprepares)

    def _enter_view(self, new_view: int, preprepares: tuple[PrePrepare, ...]) -> None:
        self.view = new_view
        self.in_view_change = False
        if self.tracer.enabled:
            self.tracer.emit("bft.viewchange.end", self.env.now(), self.id,
                             view=new_view)
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._view_changes = {
            view: votes for view, votes in self._view_changes.items() if view > new_view
        }
        # Reset per-view ordering state above the stable checkpoint; committed
        # but unexecuted instances are re-proposed via the new-view preprepares.
        reproposed = {pp.seq for pp in preprepares}
        for seq in list(self._instances):
            instance = self._instances[seq]
            if instance.executed:
                continue
            self._log_bytes -= self._instance_bytes(instance)
            del self._instances[seq]
        self._log_bytes = max(0, self._log_bytes)
        self._next_seq = max(
            self.last_stable_seq + 1, self._next_exec, *(seq + 1 for seq in reproposed)
        ) if reproposed else max(self.last_stable_seq + 1, self._next_exec)
        self.stats.view_changes_completed += 1
        if self.is_primary:
            for preprepare in preprepares:
                self._accept_preprepare(preprepare)
                self._broadcast_preprepare(preprepare)
        else:
            for preprepare in preprepares:
                # Reproposals now cover executed instances too; re-accepting
                # one locally executed would flag a digest conflict against
                # the retained old-view preprepare.
                if preprepare.seq < self._next_exec:
                    continue
                self._on_preprepare(preprepare)
        self._on_new_primary(self.primary_id)
