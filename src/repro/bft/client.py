"""Traditional PBFT client handling — the paper's evaluation baseline.

In the baseline "each node runs a client and replica process and every
client reads bus data and forwards it to the primary as a BFT request.
Identical requests are thus ordered up to four times" (§V-A).  PBFT dedups
only on complete requests including client ids, not payloads, so the four
clients' copies of one bus cycle are four distinct requests.

The client implements standard PBFT behaviour: send to the primary, wait
for f+1 matching replies, and on timeout retransmit by broadcasting to all
replicas (which is also what exposes a censoring primary).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.bft.config import BftConfig
from repro.bft.env import Env
from repro.crypto.hashing import sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.wire.codec import Reader, Writer
from repro.wire.messages import Request, SignedRequest

_UNSIGNED = b"\x00" * SIGNATURE_SIZE
_DOMAIN_REPLY = b"pbft/reply"


@dataclass(frozen=True)
class ClientRequestWrapper:
    """Client traffic envelope, distinguishable from ZugChain broadcasts."""

    request: SignedRequest

    def encode(self) -> bytes:
        return self.request.encode()

    @classmethod
    def decode(cls, data: bytes) -> "ClientRequestWrapper":
        return cls(request=SignedRequest.decode(data))

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class Reply:
    """Replica's execution acknowledgement to the submitting client."""

    seq: int
    digest: bytes
    client_id: str
    replica_id: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.seq.to_bytes(8, "big"),
            self.digest,
            self.client_id.encode(),
            self.replica_id.encode(),
            domain=_DOMAIN_REPLY,
        )

    def signed(self, keypair: KeyPair) -> "Reply":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, 32)
        writer.put_str(self.client_id)
        writer.put_str(self.replica_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Reply":
        reader = Reader(data)
        seq = reader.get_uint()
        digest = reader.get_fixed(32)
        client_id = reader.get_str()
        replica_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(seq=seq, digest=digest, client_id=client_id,
                   replica_id=replica_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass
class _PendingRequest:
    signed: SignedRequest
    submitted_at: float
    replies: dict[str, Reply] = field(default_factory=dict)
    timer: object = None
    retransmitted: bool = False


class PbftClient:
    """One node's client process in the baseline configuration."""

    def __init__(
        self,
        env: Env,
        config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        on_complete: Callable[[SignedRequest, int, float], None],
        retry_timeout_s: float | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.keypair = keypair
        self.keystore = keystore
        self._on_complete = on_complete
        self._retry_timeout_s = retry_timeout_s or config.view_change_timeout_s
        self._primary_hint = config.primary_of_view(0)
        self._pending: dict[bytes, _PendingRequest] = {}
        self.completed = 0
        self.retransmissions = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def note_primary(self, primary_id: str) -> None:
        """Update the primary hint and retransmit the backlog.

        On learning of a view change, pending requests (possibly sent to the
        deposed primary and lost with it) are resent to the new primary
        immediately with fresh retry timers, so they complete well before
        the restarted view-change timers on the backups expire.
        """
        self._primary_hint = primary_id
        for digest, pending in sorted(self._pending.items()):
            if pending.timer is not None:
                pending.timer.cancel()
            self.env.send(primary_id, ClientRequestWrapper(request=pending.signed))
            pending.timer = self.env.set_timer(
                self._retry_timeout_s,
                lambda digest=digest: self._retransmit(digest),
            )

    def submit(self, request: Request) -> SignedRequest:
        """Sign and forward a bus request to the primary; arm retransmission."""
        signed = SignedRequest.create(request, self.env.node_id, self.keypair)
        pending = _PendingRequest(signed=signed, submitted_at=self.env.now())
        self._pending[signed.digest] = pending
        self.env.send(self._primary_hint, ClientRequestWrapper(request=signed))
        pending.timer = self.env.set_timer(
            self._retry_timeout_s, lambda: self._retransmit(signed.digest)
        )
        return signed

    def _retransmit(self, digest: bytes) -> None:
        pending = self._pending.get(digest)
        if pending is None:
            return
        # Standard PBFT: after the first timeout, broadcast to all replicas so
        # a censoring primary cannot suppress the request.
        self.retransmissions += 1
        pending.retransmitted = True
        self.env.broadcast(ClientRequestWrapper(request=pending.signed))
        pending.timer = self.env.set_timer(
            self._retry_timeout_s, lambda: self._retransmit(digest)
        )

    def on_reply(self, reply: Reply) -> None:
        pending = self._pending.get(reply.digest)
        if pending is None:
            return
        if reply.client_id != self.env.node_id:
            return
        if not self.config.is_member(reply.replica_id) or not reply.verify(self.keystore):
            return
        pending.replies[reply.replica_id] = reply
        matching = [r for r in pending.replies.values() if r.seq == reply.seq]
        if len(matching) >= self.config.f + 1:
            if pending.timer is not None:
                pending.timer.cancel()
            del self._pending[reply.digest]
            self.completed += 1
            latency = self.env.now() - pending.submitted_at
            self._on_complete(pending.signed, reply.seq, latency)
