"""PBFT group configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class BftConfig:
    """Static parameters of one BFT group.

    ``replica_ids`` is the ordered membership; the primary of view ``v`` is
    ``replica_ids[v % n]`` (round-robin, as in PBFT).  ``f`` is derived from
    the group size unless pinned explicitly.
    """

    replica_ids: tuple[str, ...]
    f: int | None = None
    checkpoint_interval: int = 10        # requests per checkpoint == block size
    watermark_window: int = 200          # high watermark = low + window
    view_change_timeout_s: float = 0.5   # baseline's timeout (§V-B, Fig. 8)
    max_open_per_node: int = 16          # DoS rate limit on open requests (§III-C)
    gap_fetch_timeout_s: float = 0.3     # execution-stall detection delay
    max_gap_fetch_span: int = 20         # decided seqs requested per fetch

    def __post_init__(self) -> None:
        n = len(self.replica_ids)
        if len(set(self.replica_ids)) != n:
            raise ConfigError("replica ids must be unique")
        max_f = (n - 1) // 3
        fault_budget = self.f if self.f is not None else max_f
        if fault_budget < 0 or n < 3 * fault_budget + 1:
            raise ConfigError(
                f"need n >= 3f+1: n={n}, f={fault_budget}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint interval must be >= 1")
        object.__setattr__(self, "f", fault_budget)

    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def quorum(self) -> int:
        """2f+1 — the commit/checkpoint/view-change quorum."""
        return 2 * self.f + 1

    @property
    def prepared_quorum(self) -> int:
        """2f matching prepares (plus the preprepare) form a prepared proof."""
        return 2 * self.f

    def primary_of_view(self, view: int) -> str:
        return self.replica_ids[view % self.n]

    def index_of(self, replica_id: str) -> int:
        try:
            return self.replica_ids.index(replica_id)
        except ValueError:
            raise ConfigError(f"unknown replica {replica_id!r}") from None

    def is_member(self, replica_id: str) -> bool:
        return replica_id in self.replica_ids
