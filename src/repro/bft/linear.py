"""LinearBFT: a second primary-based backend for the ZugChain layer.

The paper notes ZugChain "can support other primary-based BFT protocols as
well" (§IV).  This backend demonstrates it: a linear-communication
protocol in the SBFT/HotStuff family, exposing the exact Table I interface
(propose / suspect / decide / new-primary) the ZugChain layer consumes.

Normal case (O(n) messages instead of PBFT's O(n²)):

1. the primary broadcasts a :class:`~repro.bft.messages.PrePrepare`;
2. replicas send a signed :class:`Vote` back *to the primary only*;
3. the primary assembles 2f+1 votes into a :class:`CommitCert` and
   broadcasts it; replicas verify the certificate and execute.

The trade-off mirrors the real systems: one extra one-way trip of latency
through the primary in exchange for linear message complexity — visible in
``benchmarks/bench_backends.py``.

View changes reuse the PBFT messages: certified-but-unexecuted requests
ride along as prepared proofs and are re-proposed by the new primary.
Checkpointing (one per block, 2f+1 signatures) is identical, so the export
protocol works unchanged on top of either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.bft.checkpoint import CheckpointCertificate, CheckpointCollector
from repro.bft.config import BftConfig
from repro.bft.env import Env
from repro.bft.messages import (
    Checkpoint,
    NewView,
    PrePrepare,
    PreparedProof,
    ViewChange,
)
from repro.crypto.hashing import sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.bft.replica import ReplicaStats
from repro.obs.trace import NULL_TRACER, Tracer
from repro.wire.codec import Reader, Writer
from repro.wire.messages import SignedRequest

_UNSIGNED = b"\x00" * SIGNATURE_SIZE
_DOMAIN_VOTE = b"linear/vote"


@dataclass(frozen=True)
class Vote:
    """Replica's signed endorsement of (view, seq, digest), sent to the primary."""

    view: int
    seq: int
    digest: bytes
    replica_id: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.view.to_bytes(8, "big"), self.seq.to_bytes(8, "big"),
                      self.digest, self.replica_id.encode(), domain=_DOMAIN_VOTE)

    def signed(self, keypair: KeyPair) -> "Vote":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, 32)
        writer.put_str(self.replica_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Vote":
        reader = Reader(data)
        view = reader.get_uint()
        seq = reader.get_uint()
        digest = reader.get_fixed(32)
        replica_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(view=view, seq=seq, digest=digest, replica_id=replica_id,
                   signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class CommitCert:
    """2f+1 votes certifying one ordered request; broadcast by the primary."""

    view: int
    seq: int
    digest: bytes
    votes: tuple[Vote, ...]

    def verify(self, keystore: KeyStore, config: BftConfig) -> bool:
        signers = set()
        for vote in self.votes:
            if (vote.view, vote.seq, vote.digest) != (self.view, self.seq, self.digest):
                return False
            if not config.is_member(vote.replica_id) or not vote.verify(keystore):
                return False
            signers.add(vote.replica_id)
        return len(signers) >= config.quorum

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, 32)
        writer.put_list(list(self.votes), lambda w, v: w.put_bytes(v.encode()))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CommitCert":
        reader = Reader(data)
        view = reader.get_uint()
        seq = reader.get_uint()
        digest = reader.get_fixed(32)
        votes = reader.get_list(lambda r: Vote.decode(r.get_bytes()))
        reader.expect_end()
        return cls(view=view, seq=seq, digest=digest, votes=tuple(votes))

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass
class _LinearInstance:
    preprepare: PrePrepare | None = None
    votes: dict[str, Vote] = field(default_factory=dict)   # primary side
    certified: bool = False
    executed: bool = False


class LinearBftReplica:
    """Drop-in alternative to :class:`~repro.bft.replica.PbftReplica`."""

    #: Message types this backend consumes (used by node-level dispatch).
    MESSAGE_TYPES = (PrePrepare, Vote, CommitCert, Checkpoint, ViewChange, NewView)

    def __init__(
        self,
        env: Env,
        config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,
        on_decide: Callable[[SignedRequest, int], None],
        on_new_primary: Callable[[str], None] | None = None,
        on_stable_checkpoint: Callable[[CheckpointCertificate], None] | None = None,
        on_preprepare_accepted: Callable[[bytes], None] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.keypair = keypair
        self.keystore = keystore
        self._on_decide = on_decide
        self._on_new_primary = on_new_primary or (lambda pid: None)
        self._on_stable_checkpoint = on_stable_checkpoint or (lambda cert: None)
        self._on_preprepare_accepted = on_preprepare_accepted or (lambda digest: None)
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.id = env.node_id
        self.view = 0
        self.in_view_change = False
        self._next_seq = 1
        self._next_exec = 1
        self.last_stable_seq = 0
        self._instances: dict[int, _LinearInstance] = {}
        self._pending_exec: dict[int, SignedRequest] = {}
        self._checkpoints = CheckpointCollector(config, keystore)
        self._view_changes: dict[int, dict[str, ViewChange]] = {}
        self._vc_timer = None
        self._log_bytes = 0
        self.stats = ReplicaStats()

    # -- role helpers -------------------------------------------------------------

    @property
    def primary_id(self) -> str:
        return self.config.primary_of_view(self.view)

    @property
    def is_primary(self) -> bool:
        return self.primary_id == self.id

    def log_size_bytes(self) -> int:
        return self._log_bytes

    def latest_stable_checkpoint(self) -> CheckpointCertificate | None:
        return self._checkpoints.latest_stable()

    def stable_checkpoint(self, seq: int) -> CheckpointCertificate | None:
        return self._checkpoints.stable_at(seq)

    def stable_checkpoint_seqs(self) -> list[int]:
        return self._checkpoints.stable_seqs()

    def discard_checkpoints_below(self, seq: int) -> None:
        self._checkpoints.discard_below(seq)

    def fast_forward(self, certificate: CheckpointCertificate) -> None:
        """Adopt a verified stable checkpoint after state transfer."""
        # Idempotent: the watermark may already have advanced via a live
        # quorum of peer checkpoints — the execution pointer still needs
        # moving once the state transfer delivered the blocks.
        self._checkpoints.install(certificate)
        self.last_stable_seq = max(self.last_stable_seq, certificate.seq)
        self._next_exec = max(self._next_exec, certificate.seq + 1)
        self._next_seq = max(self._next_seq, certificate.seq + 1)
        self._pending_exec = {s: r for s, r in self._pending_exec.items()
                              if s > certificate.seq}
        for seq in [s for s in self._instances if s <= certificate.seq]:
            del self._instances[seq]
        self._execute_ready()

    def adopt_view(self, view: int) -> None:
        """Adopt a higher view learned out of band (state transfer).

        Same contract as :meth:`PbftReplica.adopt_view`: strictly monotonic,
        liveness-only — a recovering replica stops suspecting a primary the
        rest of the cluster deposed while it was down.
        """
        if view <= self.view:
            return
        if self.in_view_change and self.tracer.enabled:
            self.tracer.emit("bft.viewchange.end", self.env.now(), self.id,
                             view=view)
        self.view = view
        self.in_view_change = False
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._view_changes = {
            v: votes for v, votes in self._view_changes.items() if v > view
        }
        self._on_new_primary(self.primary_id)

    def vote_is_redundant(self, message: Any) -> bool:
        if isinstance(message, Vote):
            if message.seq < self._next_exec:
                return True
            instance = self._instances.get(message.seq)
            return instance is not None and instance.certified
        if isinstance(message, CommitCert):
            instance = self._instances.get(message.seq)
            return message.seq < self._next_exec or (
                instance is not None and instance.certified
            )
        if isinstance(message, Checkpoint):
            return message.seq <= self.last_stable_seq
        return False

    # -- Table I downcalls -----------------------------------------------------------

    def propose(self, request: SignedRequest) -> bool:
        if not self.is_primary or self.in_view_change:
            return False
        seq = max(self._next_seq, self.last_stable_seq + 1)
        if seq > self.last_stable_seq + self.config.watermark_window:
            return False
        self._next_seq = seq + 1
        preprepare = PrePrepare(
            view=self.view, seq=seq, request=request, primary_id=self.id
        ).signed(self.keypair)
        instance = self._instance(seq)
        instance.preprepare = preprepare
        self._log_bytes += preprepare.encoded_size()
        if self.tracer.enabled:
            self.tracer.emit(
                "bft.preprepare", self.env.now(), self.id,
                view=self.view, seq=seq, digest=preprepare.digest.hex(),
            )
        # The primary's own vote.
        self._on_preprepare_accepted(preprepare.digest)
        vote = Vote(view=self.view, seq=seq, digest=preprepare.digest,
                    replica_id=self.id).signed(self.keypair)
        instance.votes[self.id] = vote
        self.stats.proposals += 1
        self.env.broadcast(preprepare)
        return True

    def suspect(self) -> None:
        self._start_view_change(self.view + 1)

    # -- dispatch ----------------------------------------------------------------------

    def on_message(self, src: str, message: Any) -> None:
        if isinstance(message, PrePrepare):
            self._on_preprepare(message)
        elif isinstance(message, Vote):
            self._on_vote(message)
        elif isinstance(message, CommitCert):
            self._on_commit_cert(message)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message)
        elif isinstance(message, ViewChange):
            self._on_view_change(message)
        elif isinstance(message, NewView):
            self._on_new_view(message)

    # -- normal case -----------------------------------------------------------------------

    def _instance(self, seq: int) -> _LinearInstance:
        return self._instances.setdefault(seq, _LinearInstance())

    def _in_watermarks(self, seq: int) -> bool:
        return self.last_stable_seq < seq <= self.last_stable_seq + self.config.watermark_window

    def _on_preprepare(self, preprepare: PrePrepare) -> None:
        if self.in_view_change or preprepare.view != self.view:
            self.stats.stale_messages += 1
            return
        if preprepare.primary_id != self.primary_id or not self._in_watermarks(preprepare.seq):
            self.stats.stale_messages += 1
            return
        if not preprepare.verify(self.keystore) or not preprepare.request.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        instance = self._instance(preprepare.seq)
        if instance.preprepare is not None:
            if instance.preprepare.digest != preprepare.digest:
                self.stats.conflicting_preprepares += 1
                self.suspect()
            return
        instance.preprepare = preprepare
        self._log_bytes += preprepare.encoded_size()
        if self.tracer.enabled:
            self.tracer.emit(
                "bft.preprepare", self.env.now(), self.id,
                view=preprepare.view, seq=preprepare.seq,
                digest=preprepare.digest.hex(),
            )
        self._on_preprepare_accepted(preprepare.digest)
        vote = Vote(view=self.view, seq=preprepare.seq, digest=preprepare.digest,
                    replica_id=self.id).signed(self.keypair)
        self.env.send(self.primary_id, vote)

    def _on_vote(self, vote: Vote) -> None:
        if not self.is_primary or vote.view != self.view or not self._in_watermarks(vote.seq):
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(vote.replica_id) or not vote.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        instance = self._instance(vote.seq)
        if instance.preprepare is None or vote.digest != instance.preprepare.digest:
            self.stats.stale_messages += 1
            return
        if vote.replica_id not in instance.votes:
            instance.votes[vote.replica_id] = vote
            self._log_bytes += vote.encoded_size()
        if not instance.certified and len(instance.votes) >= self.config.quorum:
            cert = CommitCert(
                view=self.view, seq=vote.seq, digest=vote.digest,
                votes=tuple(sorted(instance.votes.values(), key=lambda v: v.replica_id)),
            )
            self._apply_cert(cert, instance)
            self.env.broadcast(cert)

    def _on_commit_cert(self, cert: CommitCert) -> None:
        if cert.view != self.view or not self._in_watermarks(cert.seq):
            self.stats.stale_messages += 1
            return
        # Read-only lookup until the certificate verifies: an unverified
        # cert must not allocate log state (a junk-flood would bloat
        # ``_instances`` and skew log_size accounting).
        instance = self._instances.get(cert.seq)
        if instance is not None and instance.certified:
            return
        if instance is None or instance.preprepare is None \
                or instance.preprepare.digest != cert.digest:
            # A certificate can outrun its preprepare only for Byzantine
            # primaries; without the request body we cannot execute.
            self.stats.stale_messages += 1
            return
        if not cert.verify(self.keystore, self.config):
            self.stats.invalid_signatures += 1
            return
        self._apply_cert(cert, instance)

    def _apply_cert(self, cert: CommitCert, instance: _LinearInstance) -> None:
        instance.certified = True
        self._log_bytes += cert.encoded_size()
        if self.tracer.enabled:
            self.tracer.emit(
                "bft.commit", self.env.now(), self.id,
                view=cert.view, seq=cert.seq, digest=cert.digest.hex(),
            )
        self._pending_exec[cert.seq] = instance.preprepare.request
        self._execute_ready()

    def _execute_ready(self) -> None:
        while self._next_exec in self._pending_exec:
            seq = self._next_exec
            request = self._pending_exec.pop(seq)
            instance = self._instances.get(seq)
            if instance is not None:
                instance.executed = True
            self._next_exec = seq + 1
            self.stats.decided += 1
            self._on_decide(request, seq)

    # -- checkpointing (identical contract to PBFT) ---------------------------------------------

    def record_checkpoint(self, seq: int, block_height: int, block_hash: bytes,
                          state_digest: bytes) -> None:
        checkpoint = Checkpoint(
            seq=seq, block_height=block_height, block_hash=block_hash,
            state_digest=state_digest, replica_id=self.id,
        ).signed(self.keypair)
        self._handle_checkpoint(checkpoint)
        self.env.broadcast(checkpoint)

    def _on_checkpoint(self, checkpoint: Checkpoint) -> None:
        if not self.config.is_member(checkpoint.replica_id):
            self.stats.stale_messages += 1
            return
        self._handle_checkpoint(checkpoint)

    def _handle_checkpoint(self, checkpoint: Checkpoint) -> None:
        certificate = self._checkpoints.add(checkpoint)
        if certificate is None:
            return
        self.stats.checkpoints_stable += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "ckpt.stable", self.env.now(), self.id,
                seq=certificate.seq, block_height=certificate.block_height,
            )
        if self.in_view_change and certificate.seq > self.last_stable_seq:
            # 2f+1 replicas signed state beyond our suspicion point: the
            # group is live in the current view — abandon the view change
            # (a wedged minority suspecter must not ignore progress forever).
            self.in_view_change = False
            if self._vc_timer is not None:
                self._vc_timer.cancel()
                self._vc_timer = None
        if certificate.seq > self.last_stable_seq:
            self.last_stable_seq = certificate.seq
            for seq in [s for s in self._instances if s <= certificate.seq]:
                del self._instances[seq]
            self._log_bytes = max(0, self._log_bytes // 2)  # coarse GC accounting
        self._on_stable_checkpoint(certificate)

    # -- view change (PBFT-style, reusing its messages) ---------------------------------------------

    def _voted_proofs(self) -> tuple[PreparedProof, ...]:
        """Requests this replica voted for but has not executed.

        Votes — not certificates — must survive the view change: the old
        primary may have assembled a certificate (and executed) from 2f+1
        votes without any backup seeing it, so every voted request is
        re-proposed at its sequence number.  Re-proposing a request that
        never certified anywhere is harmless: same (seq, digest), ordered
        once.
        """
        proofs = []
        for seq in sorted(self._instances):
            instance = self._instances[seq]
            if not instance.executed and instance.preprepare is not None:
                proofs.append(PreparedProof(
                    view=instance.preprepare.view, seq=seq,
                    digest=instance.preprepare.digest,
                    request=instance.preprepare.request,
                ))
        return tuple(proofs)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        if any(self.id in votes for view, votes in self._view_changes.items()
               if view >= new_view):
            return
        self.in_view_change = True
        if self.tracer.enabled:
            self.tracer.emit("bft.viewchange.start", self.env.now(), self.id,
                             new_view=new_view)
        stable = self._checkpoints.latest_stable()
        view_change = ViewChange(
            new_view=new_view,
            last_stable_seq=self.last_stable_seq,
            stable_checkpoint_digest=stable.state_digest if stable else b"\x00" * 32,
            prepared=self._voted_proofs(),
            replica_id=self.id,
        ).signed(self.keypair)
        self._view_changes.setdefault(new_view, {})[self.id] = view_change
        self.env.broadcast(view_change)
        if self._vc_timer is not None:
            self._vc_timer.cancel()
        self._vc_timer = self.env.set_timer(
            self.config.view_change_timeout_s,
            lambda: self.in_view_change and self._start_view_change(new_view + 1),
        )
        self._maybe_assume_leadership(new_view)

    def _on_view_change(self, view_change: ViewChange) -> None:
        if view_change.new_view <= self.view:
            self.stats.stale_messages += 1
            return
        if not self.config.is_member(view_change.replica_id) or not view_change.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        votes = self._view_changes.setdefault(view_change.new_view, {})
        votes[view_change.replica_id] = view_change
        if not self.in_view_change and len(votes) >= self.config.f + 1:
            self._start_view_change(view_change.new_view)
        self._maybe_assume_leadership(view_change.new_view)

    def _maybe_assume_leadership(self, new_view: int) -> None:
        if self.config.primary_of_view(new_view) != self.id or new_view <= self.view:
            return
        votes = self._view_changes.get(new_view, {})
        if len(votes) < self.config.quorum:
            return
        view_changes = tuple(sorted(votes.values(), key=lambda vc: vc.replica_id))
        min_stable = max(vc.last_stable_seq for vc in view_changes)
        best: dict[int, PreparedProof] = {}
        for vc in view_changes:
            for proof in vc.prepared:
                if proof.seq <= min_stable:
                    continue
                current = best.get(proof.seq)
                if current is None or proof.view > current.view:
                    best[proof.seq] = proof
        preprepares = tuple(
            PrePrepare(view=new_view, seq=seq, request=best[seq].request,
                       primary_id=self.id).signed(self.keypair)
            for seq in sorted(best)
        )
        new_view_msg = NewView(view=new_view, view_changes=view_changes,
                               preprepares=preprepares, primary_id=self.id).signed(self.keypair)
        self.env.broadcast(new_view_msg)
        self._enter_view(new_view, preprepares)

    def _on_new_view(self, new_view_msg: NewView) -> None:
        if new_view_msg.view <= self.view:
            self.stats.stale_messages += 1
            return
        if new_view_msg.primary_id != self.config.primary_of_view(new_view_msg.view):
            self.stats.stale_messages += 1
            return
        if not new_view_msg.verify(self.keystore):
            self.stats.invalid_signatures += 1
            return
        signers = {vc.replica_id for vc in new_view_msg.view_changes
                   if vc.new_view == new_view_msg.view and vc.verify(self.keystore)}
        if len(signers) < self.config.quorum:
            self.stats.invalid_signatures += 1
            return
        self._enter_view(new_view_msg.view, new_view_msg.preprepares)

    def _enter_view(self, new_view: int, preprepares: tuple[PrePrepare, ...]) -> None:
        self.view = new_view
        self.in_view_change = False
        if self.tracer.enabled:
            self.tracer.emit("bft.viewchange.end", self.env.now(), self.id,
                             view=new_view)
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self._view_changes = {v: votes for v, votes in self._view_changes.items() if v > new_view}
        for seq in list(self._instances):
            if not self._instances[seq].executed:
                del self._instances[seq]
        reproposed = {pp.seq for pp in preprepares}
        self._next_seq = max(
            [self.last_stable_seq + 1, self._next_exec] + [s + 1 for s in reproposed]
        )
        self.stats.view_changes_completed += 1
        if self.is_primary:
            for preprepare in preprepares:
                instance = self._instance(preprepare.seq)
                instance.preprepare = preprepare
                vote = Vote(view=new_view, seq=preprepare.seq, digest=preprepare.digest,
                            replica_id=self.id).signed(self.keypair)
                instance.votes[self.id] = vote
                self.env.broadcast(preprepare)
        else:
            for preprepare in preprepares:
                self._on_preprepare(preprepare)
        self._on_new_primary(self.primary_id)
