"""PBFT protocol messages with byte-accurate encodings and signatures.

All messages exchanged by ZugChain nodes are signed with asymmetric
cryptography (§III-B).  Every type provides:

* ``signing_payload()`` — the exact bytes covered by the signature;
* ``signed(keypair)``   — a signed copy (messages are immutable);
* ``verify(keystore)``  — signature check against the registered key;
* ``encode()`` / ``decode()`` and ``encoded_size()`` — wire accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from repro.crypto.hashing import DOMAIN_CHECKPOINT, sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.wire.codec import Reader, Writer
from repro.wire.messages import SignedRequest

_UNSIGNED = b"\x00" * SIGNATURE_SIZE

_DOMAIN_PREPREPARE = b"pbft/preprepare"
_DOMAIN_PREPARE = b"pbft/prepare"
_DOMAIN_COMMIT = b"pbft/commit"
_DOMAIN_CHECKPOINT = b"pbft/checkpoint"
_DOMAIN_VIEWCHANGE = b"pbft/viewchange"
_DOMAIN_NEWVIEW = b"pbft/newview"
_DOMAIN_DECIDE_FETCH = b"pbft/decide-fetch"
_DOMAIN_DECIDE_PROOF = b"pbft/decide-proof"


@dataclass(frozen=True)
class PrePrepare:
    """Primary's ordering proposal carrying the full signed request."""

    view: int
    seq: int
    request: SignedRequest
    primary_id: str
    signature: bytes = _UNSIGNED

    @cached_property
    def digest(self) -> bytes:
        return self.request.digest

    def signing_payload(self) -> bytes:
        return sha256(
            self.view.to_bytes(8, "big"),
            self.seq.to_bytes(8, "big"),
            self.digest,
            self.primary_id.encode(),
            domain=_DOMAIN_PREPREPARE,
        )

    def signed(self, keypair: KeyPair) -> "PrePrepare":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.primary_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_uint(self.seq)
        writer.put_bytes(self.request.encode())
        writer.put_str(self.primary_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "PrePrepare":
        reader = Reader(data)
        view = reader.get_uint()
        seq = reader.get_uint()
        request = SignedRequest.decode(reader.get_bytes())
        primary_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(view=view, seq=seq, request=request, primary_id=primary_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class _PhaseVote:
    """Shared shape of Prepare and Commit: a vote on (view, seq, digest)."""

    view: int
    seq: int
    digest: bytes
    replica_id: str
    signature: bytes = _UNSIGNED

    _DOMAIN = b"pbft/vote"

    def signing_payload(self) -> bytes:
        return sha256(
            self.view.to_bytes(8, "big"),
            self.seq.to_bytes(8, "big"),
            self.digest,
            self.replica_id.encode(),
            domain=self._DOMAIN,
        )

    def signed(self, keypair: KeyPair):
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, 32)
        writer.put_str(self.replica_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes):
        reader = Reader(data)
        view = reader.get_uint()
        seq = reader.get_uint()
        digest = reader.get_fixed(32)
        replica_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(view=view, seq=seq, digest=digest, replica_id=replica_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class Prepare(_PhaseVote):
    _DOMAIN = _DOMAIN_PREPARE


@dataclass(frozen=True)
class Commit(_PhaseVote):
    _DOMAIN = _DOMAIN_COMMIT


@dataclass(frozen=True)
class Checkpoint:
    """Signed application snapshot reference: one per block (§III-C).

    ``state_digest`` commits to the block hash and the chain state so a
    stable checkpoint certificate proves the block's inclusion in the
    blockchain — the export protocol's verification anchor.
    """

    seq: int
    block_height: int
    block_hash: bytes
    state_digest: bytes
    replica_id: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.seq.to_bytes(8, "big"),
            self.block_height.to_bytes(8, "big"),
            self.block_hash,
            self.state_digest,
            self.replica_id.encode(),
            domain=_DOMAIN_CHECKPOINT,
        )

    def signed(self, keypair: KeyPair) -> "Checkpoint":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.seq)
        writer.put_uint(self.block_height)
        writer.put_fixed(self.block_hash, 32)
        writer.put_fixed(self.state_digest, 32)
        writer.put_str(self.replica_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Checkpoint":
        reader = Reader(data)
        seq = reader.get_uint()
        block_height = reader.get_uint()
        block_hash = reader.get_fixed(32)
        state_digest = reader.get_fixed(32)
        replica_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(seq=seq, block_height=block_height, block_hash=block_hash,
                   state_digest=state_digest, replica_id=replica_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


def checkpoint_state_digest(block_hash: bytes, chain_height: int, open_request_digests: list[bytes]) -> bytes:
    """Application state digest covered by checkpoint signatures."""
    return sha256(
        block_hash,
        chain_height.to_bytes(8, "big"),
        *sorted(open_request_digests),
        domain=DOMAIN_CHECKPOINT,
    )


@dataclass(frozen=True)
class PreparedProof:
    """Evidence in a ViewChange that (seq, digest) was prepared in ``view``."""

    view: int
    seq: int
    digest: bytes
    request: SignedRequest

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_uint(self.seq)
        writer.put_fixed(self.digest, 32)
        writer.put_bytes(self.request.encode())
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "PreparedProof":
        reader = Reader(data)
        view = reader.get_uint()
        seq = reader.get_uint()
        digest = reader.get_fixed(32)
        request = SignedRequest.decode(reader.get_bytes())
        reader.expect_end()
        return cls(view=view, seq=seq, digest=digest, request=request)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ViewChange:
    """A replica's vote to move to ``new_view``."""

    new_view: int
    last_stable_seq: int
    stable_checkpoint_digest: bytes
    prepared: tuple[PreparedProof, ...]
    replica_id: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.new_view.to_bytes(8, "big"),
            self.last_stable_seq.to_bytes(8, "big"),
            self.stable_checkpoint_digest,
            *[proof.encode() for proof in self.prepared],
            self.replica_id.encode(),
            domain=_DOMAIN_VIEWCHANGE,
        )

    def signed(self, keypair: KeyPair) -> "ViewChange":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.new_view)
        writer.put_uint(self.last_stable_seq)
        writer.put_fixed(self.stable_checkpoint_digest, 32)
        writer.put_list(list(self.prepared), lambda w, p: w.put_bytes(p.encode()))
        writer.put_str(self.replica_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ViewChange":
        reader = Reader(data)
        new_view = reader.get_uint()
        last_stable_seq = reader.get_uint()
        stable_digest = reader.get_fixed(32)
        prepared = reader.get_list(lambda r: PreparedProof.decode(r.get_bytes()))
        replica_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(new_view=new_view, last_stable_seq=last_stable_seq,
                   stable_checkpoint_digest=stable_digest, prepared=tuple(prepared),
                   replica_id=replica_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class NewView:
    """New primary's announcement: proof of 2f+1 view changes plus reproposals."""

    view: int
    view_changes: tuple[ViewChange, ...]
    preprepares: tuple[PrePrepare, ...]
    primary_id: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.view.to_bytes(8, "big"),
            *[vc.encode() for vc in self.view_changes],
            *[pp.encode() for pp in self.preprepares],
            self.primary_id.encode(),
            domain=_DOMAIN_NEWVIEW,
        )

    def signed(self, keypair: KeyPair) -> "NewView":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.primary_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.view)
        writer.put_list(list(self.view_changes), lambda w, vc: w.put_bytes(vc.encode()))
        writer.put_list(list(self.preprepares), lambda w, pp: w.put_bytes(pp.encode()))
        writer.put_str(self.primary_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "NewView":
        reader = Reader(data)
        view = reader.get_uint()
        view_changes = reader.get_list(lambda r: ViewChange.decode(r.get_bytes()))
        preprepares = reader.get_list(lambda r: PrePrepare.decode(r.get_bytes()))
        primary_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(view=view, view_changes=tuple(view_changes),
                   preprepares=tuple(preprepares), primary_id=primary_id,
                   signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class DecideFetch:
    """A stalled replica asks a peer to replay decided sequence numbers.

    Message loss (or a view change discarding in-flight instances) can
    leave a replica with an *execution gap*: later sequence numbers commit
    while ``first_seq`` never arrives, so in-order execution stalls and —
    once every correct node shares a gap somewhere — checkpoints can never
    reach quorum again.  The fetch asks one peer for the decided instances
    in ``[first_seq, last_seq]``; the peer answers with
    :class:`DecideProof` per sequence number it still holds.
    """

    requester_id: str
    first_seq: int
    last_seq: int
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.requester_id.encode(),
            self.first_seq.to_bytes(8, "big"),
            self.last_seq.to_bytes(8, "big"),
            domain=_DOMAIN_DECIDE_FETCH,
        )

    def signed(self, keypair: KeyPair) -> "DecideFetch":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.requester_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.requester_id)
        writer.put_uint(self.first_seq)
        writer.put_uint(self.last_seq)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DecideFetch":
        reader = Reader(data)
        requester_id = reader.get_str()
        first_seq = reader.get_uint()
        last_seq = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(requester_id=requester_id, first_seq=first_seq,
                   last_seq=last_seq, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class DecideProof:
    """One decided instance replayed: the preprepare plus its commit certificate.

    The proof is view-independent: 2f+1 signed commits on one
    ``(seq, digest)`` mean at least f+1 correct replicas committed it, and
    PBFT safety guarantees no conflicting digest can ever gather the same
    quorum — so a receiver may execute the request no matter which view it
    is currently in.  The outer signature only authenticates the responder;
    validity rests entirely on the inner signatures.
    """

    replica_id: str
    preprepare: PrePrepare
    commits: tuple[Commit, ...]
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(
            self.replica_id.encode(),
            self.preprepare.encode(),
            *[commit.encode() for commit in self.commits],
            domain=_DOMAIN_DECIDE_PROOF,
        )

    def signed(self, keypair: KeyPair) -> "DecideProof":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_bytes(self.preprepare.encode())
        writer.put_list(list(self.commits), lambda w, c: w.put_bytes(c.encode()))
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DecideProof":
        reader = Reader(data)
        replica_id = reader.get_str()
        preprepare = PrePrepare.decode(reader.get_bytes())
        commits = reader.get_list(lambda r: Commit.decode(r.get_bytes()))
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, preprepare=preprepare,
                   commits=tuple(commits), signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())
