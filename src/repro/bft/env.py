"""The sans-IO environment interface protocol state machines run against.

Every protocol component (PBFT replica, ZugChain layer, export handler,
data center) performs all side effects through an :class:`Env`:

* sending and broadcasting messages (``send``, ``send_many``, ``broadcast``),
* arming and cancelling timers,
* reading the clock.

The shared semantics — canonical sorted recipient ordering, broadcast
self-exclusion, fire-once timers, send/drop/timer counters — live in
:class:`repro.runtime.base.BaseEnv`; each runtime (the discrete-event
simulator's :class:`~repro.runtime.env.SimEnv`, the TCP
:class:`~repro.runtime.asyncio_runtime.AsyncioEnv`, and the
:class:`RecordingEnv` test double below) only adapts the transport.
``tests/runtime/test_env_conformance.py`` holds them to one behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Protocol


class TimerHandle(Protocol):
    """Cancellable fire-once timer."""

    def cancel(self) -> None: ...

    @property
    def active(self) -> bool: ...


class Env(Protocol):
    """Side-effect interface for protocol state machines."""

    @property
    def node_id(self) -> str: ...

    def now(self) -> float: ...

    def send(self, dst: str, message: Any) -> None: ...

    def send_many(self, dsts: Iterable[str], message: Any) -> None: ...

    def broadcast(self, message: Any) -> None: ...

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle: ...


# RecordingEnv subclasses the runtime-layer BaseEnv.  The import sits below
# the Env protocol on purpose: repro.runtime's cost model imports message
# classes whose modules import Env from here, so by the time that import
# cycle swings back around, Env must already be defined.
from repro.obs.causal import CausalContext  # noqa: E402
from repro.runtime.base import BaseEnv, EnvTimer  # noqa: E402


class RecordingEnv(BaseEnv):
    """Test double: records sends/broadcasts, exposes timers for manual firing.

    By default the env knows no peers, so ``broadcast`` records the message
    in :attr:`broadcasts` without fanning out copies (the BFT harness does
    its own fan-out).  Pass ``peers`` to exercise the canonical per-recipient
    emission path: each copy then also lands in :attr:`sent`, and node ids
    added to :attr:`unreachable` are dropped and counted instead.
    """

    def __init__(
        self,
        node_id: str = "node-0",
        peers: Iterable[str] = (),
        now: float = 0.0,
    ) -> None:
        super().__init__(node_id)
        self._now = now
        self.peers: tuple[str, ...] = tuple(peers)
        self.unreachable: set[str] = set()
        self.sent: list[tuple[str, Any]] = []
        #: Causal context per recorded copy, parallel to :attr:`sent`
        #: (``sent`` keeps its historical 2-tuple shape for the many tests
        #: that unpack it).
        self.sent_ctx: list[CausalContext] = []
        self.broadcasts: list[Any] = []
        self.timers: list[EnvTimer] = []

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt

    def broadcast(self, message: Any) -> None:
        self.broadcasts.append(message)
        super().broadcast(message)

    # -- transport hooks -----------------------------------------------------

    def _peer_ids(self) -> Iterable[str]:
        return self.peers

    def _transport_emit(
        self, dsts: tuple[str, ...], message: Any, ctx: CausalContext
    ) -> None:
        for dst in dsts:
            if dst in self.unreachable:
                self._note_drop()
            else:
                self.sent.append((dst, message))
                self.sent_ctx.append(ctx)

    def _transport_schedule(self, delay: float, timer: EnvTimer) -> None:
        self.timers.append(timer)
        return None

    # -- test helpers -----------------------------------------------------------

    def active_timers(self) -> list[EnvTimer]:
        return [timer for timer in self.timers if timer.active]

    def fire_next_timer(self) -> None:
        pending = sorted(self.active_timers(), key=lambda t: t.deadline)
        if not pending:
            raise AssertionError("no active timer to fire")
        timer = pending[0]
        self._now = max(self._now, timer.deadline)
        timer.fire()

    def fire_all_timers(self) -> None:
        while self.active_timers():
            self.fire_next_timer()

    def sent_of_type(self, message_type: type) -> list[tuple[str, Any]]:
        return [(dst, msg) for dst, msg in self.sent if isinstance(msg, message_type)]

    def broadcasts_of_type(self, message_type: type) -> list[Any]:
        return [msg for msg in self.broadcasts if isinstance(msg, message_type)]

    def clear(self) -> None:
        self.sent.clear()
        self.sent_ctx.clear()
        self.broadcasts.clear()
