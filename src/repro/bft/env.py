"""The sans-IO environment interface protocol state machines run against.

Every protocol component (PBFT replica, ZugChain layer, export handler,
data center) performs all side effects through an :class:`Env`:

* sending and broadcasting messages,
* arming and cancelling timers,
* reading the clock.

The simulation runtime (:mod:`repro.runtime`) implements the interface on
the discrete-event kernel with CPU and network cost accounting; unit tests
use :class:`RecordingEnv` to drive state machines directly and assert on
their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol


class TimerHandle(Protocol):
    """Cancellable timer."""

    def cancel(self) -> None: ...

    @property
    def active(self) -> bool: ...


class Env(Protocol):
    """Side-effect interface for protocol state machines."""

    @property
    def node_id(self) -> str: ...

    def now(self) -> float: ...

    def send(self, dst: str, message: Any) -> None: ...

    def broadcast(self, message: Any) -> None: ...

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle: ...


class _RecordedTimer:
    """Timer handle used by :class:`RecordingEnv`; fired manually by tests."""

    def __init__(self, env: "RecordingEnv", delay: float, callback: Callable[[], None]) -> None:
        self._env = env
        self.deadline = env.now() + delay
        self.callback = callback
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        self._active = False

    def fire(self) -> None:
        if self._active:
            self._active = False
            self.callback()


@dataclass
class RecordingEnv:
    """Test double: records sends/broadcasts, exposes timers for manual firing."""

    node_id: str = "node-0"
    _now: float = 0.0
    sent: list[tuple[str, Any]] = field(default_factory=list)
    broadcasts: list[Any] = field(default_factory=list)
    timers: list[_RecordedTimer] = field(default_factory=list)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt

    def send(self, dst: str, message: Any) -> None:
        self.sent.append((dst, message))

    def broadcast(self, message: Any) -> None:
        self.broadcasts.append(message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> _RecordedTimer:
        timer = _RecordedTimer(self, delay, callback)
        self.timers.append(timer)
        return timer

    # -- test helpers -----------------------------------------------------------

    def active_timers(self) -> list[_RecordedTimer]:
        return [timer for timer in self.timers if timer.active]

    def fire_next_timer(self) -> None:
        pending = sorted(self.active_timers(), key=lambda t: t.deadline)
        if not pending:
            raise AssertionError("no active timer to fire")
        timer = pending[0]
        self._now = max(self._now, timer.deadline)
        timer.fire()

    def fire_all_timers(self) -> None:
        while self.active_timers():
            self.fire_next_timer()

    def sent_of_type(self, message_type: type) -> list[tuple[str, Any]]:
        return [(dst, msg) for dst, msg in self.sent if isinstance(msg, message_type)]

    def broadcasts_of_type(self, message_type: type) -> list[Any]:
        return [msg for msg in self.broadcasts if isinstance(msg, message_type)]

    def clear(self) -> None:
        self.sent.clear()
        self.broadcasts.clear()
