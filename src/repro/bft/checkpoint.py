"""Stable checkpoint certificates.

A stable checkpoint is a (seq, block, state) reference backed by 2f+1
replica signatures.  It serves two roles:

* inside PBFT — garbage collection of ordering messages below ``seq``;
* in the export protocol — the proof data centers use that a block is part
  of the agreed blockchain, letting export bypass consensus (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint
from repro.crypto.keys import KeyStore
from repro.util.errors import ProtocolError
from repro.wire.codec import Reader, Writer


@dataclass(frozen=True)
class CheckpointCertificate:
    """2f+1 matching, signed checkpoint messages for one (seq, digest)."""

    seq: int
    block_height: int
    block_hash: bytes
    state_digest: bytes
    signatures: tuple[Checkpoint, ...]

    def signer_ids(self) -> set[str]:
        return {cp.replica_id for cp in self.signatures}

    def verify(self, keystore: KeyStore, config: BftConfig) -> bool:
        """Check quorum size, membership, consistency, and every signature."""
        if len(self.signer_ids()) < config.quorum:
            return False
        for checkpoint in self.signatures:
            if not config.is_member(checkpoint.replica_id):
                return False
            if (checkpoint.seq, checkpoint.block_height, checkpoint.block_hash,
                    checkpoint.state_digest) != (self.seq, self.block_height,
                                                 self.block_hash, self.state_digest):
                return False
            if not checkpoint.verify(keystore):
                return False
        return True

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_uint(self.seq)
        writer.put_uint(self.block_height)
        writer.put_fixed(self.block_hash, 32)
        writer.put_fixed(self.state_digest, 32)
        writer.put_list(list(self.signatures), lambda w, cp: w.put_bytes(cp.encode()))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "CheckpointCertificate":
        reader = Reader(data)
        seq = reader.get_uint()
        block_height = reader.get_uint()
        block_hash = reader.get_fixed(32)
        state_digest = reader.get_fixed(32)
        signatures = reader.get_list(lambda r: Checkpoint.decode(r.get_bytes()))
        reader.expect_end()
        return cls(seq=seq, block_height=block_height, block_hash=block_hash,
                   state_digest=state_digest, signatures=tuple(signatures))

    def encoded_size(self) -> int:
        return len(self.encode())


class CheckpointCollector:
    """Accumulates checkpoint messages until a certificate becomes stable."""

    def __init__(self, config: BftConfig, keystore: KeyStore) -> None:
        self._config = config
        self._keystore = keystore
        # (seq, digest) -> replica_id -> Checkpoint
        self._pending: dict[tuple[int, bytes], dict[str, Checkpoint]] = {}
        self._stable: dict[int, CheckpointCertificate] = {}

    def add(self, checkpoint: Checkpoint) -> CheckpointCertificate | None:
        """Record a checkpoint message; returns a certificate if now stable."""
        if not self._config.is_member(checkpoint.replica_id):
            raise ProtocolError(f"checkpoint from non-member {checkpoint.replica_id!r}")
        if not checkpoint.verify(self._keystore):
            return None
        if checkpoint.seq in self._stable:
            return None
        key = (checkpoint.seq, checkpoint.state_digest)
        votes = self._pending.setdefault(key, {})
        votes[checkpoint.replica_id] = checkpoint
        if len(votes) < self._config.quorum:
            return None
        certificate = CheckpointCertificate(
            seq=checkpoint.seq,
            block_height=checkpoint.block_height,
            block_hash=checkpoint.block_hash,
            state_digest=checkpoint.state_digest,
            signatures=tuple(sorted(votes.values(), key=lambda cp: cp.replica_id)),
        )
        self._stable[checkpoint.seq] = certificate
        # Older pending votes are obsolete once a later checkpoint stabilizes.
        self._pending = {
            key: votes for key, votes in self._pending.items() if key[0] > checkpoint.seq
        }
        return certificate

    def install(self, certificate: CheckpointCertificate) -> None:
        """Adopt an externally verified certificate (state transfer)."""
        self._stable.setdefault(certificate.seq, certificate)

    def stable_at(self, seq: int) -> CheckpointCertificate | None:
        return self._stable.get(seq)

    def latest_stable(self) -> CheckpointCertificate | None:
        if not self._stable:
            return None
        return self._stable[max(self._stable)]

    def stable_seqs(self) -> list[int]:
        return sorted(self._stable)

    def discard_below(self, seq: int) -> None:
        """Free certificates below ``seq`` (after export confirms deletion)."""
        self._stable = {s: cert for s, cert in self._stable.items() if s >= seq}
