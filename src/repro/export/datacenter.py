"""The data-center side of the export protocol.

Each railway company runs its own data center; all of them permanently
archive the blockchain and mutually verify exports.  Any data center can
initiate a round (Fig. 4): it reads from the replicas, waits for 2f+1
checkpoint replies plus full blocks from the designated replica, verifies,
synchronizes with its peers, and issues the signed delete.

Phase timings are recorded per round — they are what Table II reports
(read, verify, delete latencies for 500–16 000 blocks over LTE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.bft.env import Env
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
    SessionResume,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.util.errors import ChainError, ProtocolError


@dataclass(frozen=True)
class DataCenterConfig:
    """Parameters of one data center."""

    dc_id: str
    replica_ids: tuple[str, ...]
    peer_dc_ids: tuple[str, ...] = ()
    ack_quorum: int = 1              # replica acks to consider the delete done
    #: Per-attempt round timeout; doubles on every retry.  Generous by
    #: default so the Table II full-duration exports never trip it — chaos
    #: scenarios override it down to exercise the retry path.
    round_timeout_s: float = 600.0
    max_round_retries: int = 3       # rotations before the round is abandoned


@dataclass
class ExportRound:
    """Phase timeline and outcome of one export round."""

    started_at: float
    full_from: str
    read_done_at: float | None = None
    verify_done_at: float | None = None
    delete_done_at: float | None = None
    blocks_exported: int = 0
    checkpoint_seq: int = 0
    verify_cpu_s: float = 0.0
    fetch_rounds: int = 0
    retries: int = 0

    @property
    def read_s(self) -> float:
        return (self.read_done_at or self.started_at) - self.started_at

    @property
    def verify_s(self) -> float:
        if self.read_done_at is None or self.verify_done_at is None:
            return 0.0
        return self.verify_done_at - self.read_done_at

    @property
    def delete_s(self) -> float:
        if self.verify_done_at is None or self.delete_done_at is None:
            return 0.0
        return self.delete_done_at - self.verify_done_at

    @property
    def total_s(self) -> float:
        return (self.delete_done_at or self.started_at) - self.started_at

    @property
    def complete(self) -> bool:
        return self.delete_done_at is not None


class DataCenter:
    """One company's archive and export endpoint."""

    def __init__(
        self,
        env: Env,
        config: DataCenterConfig,
        bft_config: BftConfig,
        keypair,
        keystore,
        rng: random.Random,
        verify_cost: Callable[[int], float] | None = None,
        on_verified_cpu: Callable[[float], None] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.bft_config = bft_config
        self.keypair = keypair
        self.keystore = keystore
        self._rng = rng
        # Data-center hardware is a cloud VM, not an 800 MHz ARM: the
        # verification cost function maps bytes to seconds on that machine.
        self._verify_cost = verify_cost or (lambda nbytes: 25e-6 + nbytes * 1.6e-9)
        self._charge_cpu = on_verified_cpu or (lambda seconds: None)

        self.archive = Blockchain(chain_id="zugchain")
        self.last_exported_sn = 0
        self._round: ExportRound | None = None
        self._replies: dict[str, ReadReply] = {}
        self._acks: dict[str, DeleteAck] = {}
        self._pending_blocks: dict[int, Block] = {}
        self.rounds: list[ExportRound] = []
        self.rounds_aborted = 0
        self.rounds_retried = 0
        self.sessions_resumed = 0
        self.sync_blocks_rejected = 0
        self._round_timer = None
        #: Highest SessionResume incarnation seen per replica (stale-drop).
        self._incarnations: dict[str, int] = {}

    # -- round control -------------------------------------------------------------

    @property
    def current_round(self) -> ExportRound | None:
        return self._round

    def start_export(self, full_from: str | None = None) -> ExportRound:
        """Step ①: broadcast the read request to all replicas."""
        if self._round is not None and not self._round.complete:
            raise ProtocolError("an export round is already in progress")
        chosen = full_from or self._rng.choice(list(self.config.replica_ids))
        self._round = ExportRound(started_at=self.env.now(), full_from=chosen)
        if self.tracer.enabled:
            self.tracer.emit("export.round.start", self.env.now(), self.config.dc_id,
                             full_from=chosen, last_sn=self.last_exported_sn)
        self._replies = {}
        self._acks = {}
        self._pending_blocks = {}
        request = ReadRequest(
            dc_id=self.config.dc_id, last_sn=self.last_exported_sn, full_from=chosen
        ).signed(self.keypair)
        self.env.send_many(self.config.replica_ids, request)
        self._arm_round_timer()
        return self._round

    # -- retry / timeout machinery ----------------------------------------------------

    def _arm_round_timer(self) -> None:
        if self._round_timer is not None:
            self._round_timer.cancel()
        timeout = self.config.round_timeout_s * (2 ** self._round.retries)
        self._round_timer = self.env.set_timer(timeout, self._on_round_timeout)

    def _cancel_round_timer(self) -> None:
        if self._round_timer is not None:
            self._round_timer.cancel()
            self._round_timer = None

    def _on_round_timeout(self) -> None:
        round_ = self._round
        if round_ is None or round_.complete:
            return
        if round_.retries >= self.config.max_round_retries:
            self._abort_round(
                f"round timed out after {round_.retries} retries"
            )
            return
        self._restart_read("timeout", rotate=True)

    def _restart_read(self, reason: str, rotate: bool) -> None:
        """Re-issue the read phase of the in-flight round.

        ``rotate`` picks a different designated replica (timeouts assume
        the previous one is gone); a session-resume retry keeps the same
        one — it just came back.  Collected replies are discarded: they
        were addressed to the previous attempt's designated set.
        """
        round_ = self._round
        round_.retries += 1
        self.rounds_retried += 1
        if rotate:
            candidates = [
                r for r in sorted(self.config.replica_ids) if r != round_.full_from
            ]
            if candidates:
                round_.full_from = candidates[(round_.retries - 1) % len(candidates)]
        if self.tracer.enabled:
            self.tracer.emit("export.round.retried", self.env.now(),
                             self.config.dc_id, reason=reason,
                             retries=round_.retries, full_from=round_.full_from)
        round_.read_done_at = None
        round_.verify_done_at = None
        self._replies = {}
        self._pending_blocks = {}
        request = ReadRequest(
            dc_id=self.config.dc_id, last_sn=self.last_exported_sn,
            full_from=round_.full_from,
        ).signed(self.keypair)
        self.env.send_many(self.config.replica_ids, request)
        self._arm_round_timer()

    def _on_session_resume(self, resume: SessionResume) -> None:
        """A replica announces it recovered; unwedge any round stuck on it.

        Verification runs before any state is touched (a forged resume must
        not bump incarnation tracking or trigger a retry), and stale
        incarnations are dropped so reordered announcements cannot make a
        data center retry against a replica that crashed again.
        """
        if resume.replica_id not in self.config.replica_ids:
            return
        if not resume.verify(self.keystore):
            return
        if resume.incarnation <= self._incarnations.get(resume.replica_id, 0):
            return
        self._incarnations[resume.replica_id] = resume.incarnation
        self.sessions_resumed += 1
        round_ = self._round
        if (
            round_ is not None
            and not round_.complete
            and round_.read_done_at is None
            and round_.full_from == resume.replica_id
            and round_.retries < self.config.max_round_retries
        ):
            self._restart_read("session-resume", rotate=False)

    # -- dispatch ----------------------------------------------------------------------

    def handle_message(self, src: str, message: Any) -> None:
        if isinstance(message, ReadReply):
            self._on_read_reply(message)
        elif isinstance(message, BlockFetchReply):
            self._on_fetch_reply(message)
        elif isinstance(message, DeleteAck):
            self._on_delete_ack(message)
        elif isinstance(message, DcSync):
            self._on_sync(message)
        elif isinstance(message, SessionResume):
            self._on_session_resume(message)

    # -- step ② / ③: collect replies ------------------------------------------------------

    def _on_read_reply(self, reply: ReadReply) -> None:
        round_ = self._round
        if round_ is None or round_.read_done_at is not None:
            return
        if reply.replica_id not in self.config.replica_ids:
            return
        if not reply.verify(self.keystore):
            return
        self._replies[reply.replica_id] = reply
        for block in reply.blocks:
            self._pending_blocks[block.height] = block
        full_received = any(
            r.replica_id == round_.full_from and r.blocks for r in self._replies.values()
        ) or round_.full_from not in self.config.replica_ids
        if len(self._replies) >= self.bft_config.quorum and (
            full_received or self._designated_has_nothing_new()
        ):
            round_.read_done_at = self.env.now()
            if self.tracer.enabled:
                self.tracer.emit("export.read_done", self.env.now(), self.config.dc_id,
                                 replies=len(self._replies),
                                 blocks=len(self._pending_blocks))
            try:
                self._verify_and_continue()
            except ChainError as exc:
                self._abort_round(str(exc))

    def _designated_has_nothing_new(self) -> bool:
        """The designated replica replied but had no blocks beyond last_sn."""
        reply = self._replies.get(self._round.full_from)
        if reply is None:
            return False
        cp = reply.checkpoint
        return cp is None or cp.seq <= self.last_exported_sn

    # -- step ④: verify -----------------------------------------------------------------------

    def _latest_checkpoint(self) -> CheckpointCertificate | None:
        best: CheckpointCertificate | None = None
        for reply in self._replies.values():
            cp = reply.checkpoint
            if cp is None or not cp.verify(self.keystore, self.bft_config):
                continue
            if best is None or cp.seq > best.seq:
                best = cp
        return best

    def _verify_and_continue(self) -> None:
        round_ = self._round
        checkpoint = self._latest_checkpoint()
        if checkpoint is None or checkpoint.seq <= self.last_exported_sn:
            # Nothing new to export.
            round_.verify_done_at = self.env.now()
            round_.delete_done_at = self.env.now()
            self._cancel_round_timer()
            self.rounds.append(round_)
            return
        round_.checkpoint_seq = checkpoint.seq

        first_needed = self.archive.height + 1
        missing = [
            height for height in range(first_needed, checkpoint.block_height + 1)
            if height not in self._pending_blocks
        ]
        if missing:
            # Second round of communication: query replicas directly.
            round_.fetch_rounds += 1
            if round_.fetch_rounds > 3:
                raise ChainError("unable to obtain missing blocks after 3 fetch rounds")
            fetch = BlockFetch(
                dc_id=self.config.dc_id,
                first_height=missing[0],
                last_height=missing[-1],
            ).signed(self.keypair)
            target = self._rng.choice(
                [r for r in self.config.replica_ids if r != round_.full_from]
                or list(self.config.replica_ids)
            )
            self.env.send(target, fetch)
            return

        self._finish_verification(checkpoint)

    def _on_fetch_reply(self, reply: BlockFetchReply) -> None:
        if self._round is None or not reply.verify(self.keystore):
            return
        for block in reply.blocks:
            self._pending_blocks[block.height] = block
        try:
            self._verify_and_continue()
        except ChainError as exc:
            self._abort_round(str(exc))

    def _abort_round(self, reason: str) -> None:
        """A round fed inconsistent blocks dies; the data center does not.

        Signatures can all check out while the block *contents* are still
        hostile (bad links, payload-root mismatch, a head that contradicts
        the checkpoint) — those surface as :class:`ChainError` during
        verification.  Dropping the round and counting it keeps the
        dispatch path exception-free (SM006) and leaves the data center
        ready for the next ``start_export``.
        """
        self.rounds_aborted += 1
        if self.tracer.enabled:
            self.tracer.emit("export.round.aborted", self.env.now(),
                             self.config.dc_id, reason=reason)
        self._cancel_round_timer()
        self._round = None
        self._replies = {}
        self._pending_blocks = {}

    def _finish_verification(self, checkpoint: CheckpointCertificate) -> None:
        round_ = self._round
        blocks = [
            self._pending_blocks[height]
            for height in range(self.archive.height + 1, checkpoint.block_height + 1)
        ]
        verify_bytes = sum(block.encoded_size() for block in blocks)
        cpu = self._verify_cost(verify_bytes) + len(blocks) * self._verify_cost(0)
        round_.verify_cpu_s += cpu
        self._charge_cpu(cpu)

        for block in blocks:
            self.archive.append(block)  # validates links + payload roots
        head = self.archive.block_at(checkpoint.block_height)
        if head.block_hash != checkpoint.block_hash:
            raise ChainError("verified chain head does not match the checkpoint")
        round_.blocks_exported = len(blocks)
        round_.verify_done_at = self.env.now() + cpu
        if self.tracer.enabled:
            self.tracer.emit("export.verify_done", round_.verify_done_at,
                             self.config.dc_id, blocks=len(blocks),
                             cpu_s=cpu)
        # Sync and delete leave only after the verification time has elapsed.
        self.env.set_timer(cpu, lambda: self._send_sync_and_delete(checkpoint, tuple(blocks)))

    def _send_sync_and_delete(self, checkpoint: CheckpointCertificate, blocks: tuple[Block, ...]) -> None:
        # Step ③: synchronize with peer data centers.
        if self.config.peer_dc_ids:
            sync = DcSync(
                dc_id=self.config.dc_id, checkpoint=checkpoint, blocks=tuple(blocks)
            ).signed(self.keypair)
            self.env.send_many(self.config.peer_dc_ids, sync)

        # Step ⑤: sign and broadcast the delete.
        delete = DeleteRequest(
            dc_id=self.config.dc_id,
            upto_sn=checkpoint.seq,
            block_height=checkpoint.block_height,
            block_hash=checkpoint.block_hash,
        ).signed(self.keypair)
        self.env.send_many(self.config.replica_ids, delete)
        self.last_exported_sn = checkpoint.seq

    # -- step ③ receive side: peer sync -----------------------------------------------------------

    def _on_sync(self, sync: DcSync) -> None:
        if not sync.verify(self.keystore):
            return
        if not sync.checkpoint.verify(self.keystore, self.bft_config):
            return
        appended = 0
        for block in sorted(sync.blocks, key=lambda b: b.height):
            if block.height == self.archive.height + 1:
                try:
                    self.archive.append(block)
                except ChainError:
                    # A correctly signed sync can still carry garbage blocks
                    # (the peer is mutually distrusted); reject, don't crash.
                    self.sync_blocks_rejected += 1
                    break
                appended += 1
        if appended and sync.checkpoint.seq > self.last_exported_sn:
            self.last_exported_sn = sync.checkpoint.seq
            # A synchronized data center co-signs the delete (step ⑤ requires
            # a configurable number of distinct signatures on the replicas).
            delete = DeleteRequest(
                dc_id=self.config.dc_id,
                upto_sn=sync.checkpoint.seq,
                block_height=sync.checkpoint.block_height,
                block_hash=sync.checkpoint.block_hash,
            ).signed(self.keypair)
            self.env.send_many(self.config.replica_ids, delete)

    # -- step ⑦: acks ------------------------------------------------------------------------------

    def _on_delete_ack(self, ack: DeleteAck) -> None:
        round_ = self._round
        if round_ is None or round_.delete_done_at is not None:
            return
        if ack.replica_id not in self.config.replica_ids or not ack.verify(self.keystore):
            return
        self._acks[ack.replica_id] = ack
        if self.tracer.enabled:
            self.tracer.emit("export.block_acked", self.env.now(), self.config.dc_id,
                             replica=ack.replica_id, block_height=ack.block_height)
        if len(self._acks) >= self.config.ack_quorum:
            round_.delete_done_at = self.env.now()
            self._cancel_round_timer()
            if self.tracer.enabled:
                self.tracer.emit("export.delete_done", self.env.now(),
                                 self.config.dc_id,
                                 block_height=ack.block_height,
                                 acks=len(self._acks))
            self.rounds.append(round_)
