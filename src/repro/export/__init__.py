"""Secure data-center export and blockchain pruning (§III-D).

Implements the seven-step export flow of Fig. 4: data centers *read* the
latest stable checkpoint from 2f+1 replicas (full blocks from one),
verify the chain against the 2f+1-signed checkpoint certificate,
synchronize among themselves, then issue signed *deletes* that let the
replicas prune the on-train chain — keeping the last exported block as the
new base.  Export bypasses consensus entirely (stable checkpoints are no
longer active state), so it can never delay the juridical logging.
"""

from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
    SessionResume,
)
from repro.export.replica_side import ExportHandler, ExportConfig
from repro.export.datacenter import DataCenter, DataCenterConfig, ExportRound
from repro.export.seed import seed_chain_and_checkpoints

__all__ = [
    "ReadRequest",
    "ReadReply",
    "DcSync",
    "DeleteRequest",
    "DeleteAck",
    "BlockFetch",
    "BlockFetchReply",
    "SessionResume",
    "ExportHandler",
    "ExportConfig",
    "DataCenter",
    "DataCenterConfig",
    "ExportRound",
    "seed_chain_and_checkpoints",
]
