"""Fast chain seeding for export experiments.

Table II exports up to 16 000 blocks (three hours of operation).  Running
full consensus to produce them would only exercise code paths the ordering
benchmarks already cover; export is intentionally decoupled from agreement
(§III-D), so its experiments seed replica state directly: real blocks with
real signed checkpoint certificates, indistinguishable from consensus
output to the export protocol.
"""

from __future__ import annotations

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.bft.messages import Checkpoint, checkpoint_state_digest
from repro.chain.blockchain import Blockchain
from repro.chain.block import build_block
from repro.crypto.keys import KeyPair
from repro.wire.messages import Request, SignedRequest


def seed_chain_and_checkpoints(
    config: BftConfig,
    keypairs: dict[str, KeyPair],
    n_blocks: int,
    requests_per_block: int = 10,
    payload_bytes: int = 64,
    cycle_time_s: float = 0.064,
) -> tuple[Blockchain, dict[int, CheckpointCertificate]]:
    """Build a chain of ``n_blocks`` with a stable checkpoint per block.

    Returns the chain and a map of block height to its certificate, both
    shared by all replicas (they would be byte-identical after consensus).
    """
    chain = Blockchain()
    certificates: dict[int, CheckpointCertificate] = {}
    proposer = config.replica_ids[0]
    proposer_pair = keypairs[proposer]
    seq = 0
    for height in range(1, n_blocks + 1):
        requests = []
        for _ in range(requests_per_block):
            seq += 1
            payload = (seq.to_bytes(8, "big") * ((payload_bytes // 8) + 1))[:payload_bytes]
            request = Request(
                payload=payload,
                bus_cycle=seq,
                recv_timestamp_us=int(seq * cycle_time_s * 1e6),
            )
            requests.append(SignedRequest.create(request, proposer, proposer_pair))
        block = build_block(
            chain.head.header,
            requests,
            timestamp_us=requests[-1].request.recv_timestamp_us,
            last_sn=seq,
        )
        chain.append(block)
        digest = checkpoint_state_digest(block.block_hash, block.height, [])
        signatures = []
        for replica_id in config.replica_ids[: config.quorum]:
            checkpoint = Checkpoint(
                seq=seq,
                block_height=block.height,
                block_hash=block.block_hash,
                state_digest=digest,
                replica_id=replica_id,
            ).signed(keypairs[replica_id])
            signatures.append(checkpoint)
        certificates[height] = CheckpointCertificate(
            seq=seq,
            block_height=block.height,
            block_hash=block.block_hash,
            state_digest=digest,
            signatures=tuple(signatures),
        )
    return chain, certificates


def clone_chain(chain: Blockchain) -> Blockchain:
    """Independent copy for one replica (pruning must not alias)."""
    copy = Blockchain(chain_id=chain.chain_id)
    copy._blocks = list(chain._blocks)
    copy.prune_certificate = chain.prune_certificate
    return copy
