"""Export protocol messages (Fig. 4).

Both sides sign: replicas hold node key pairs, data centers hold their own
pairs with public keys known to the nodes and vice versa (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bft.checkpoint import CheckpointCertificate
from repro.chain.block import Block
from repro.crypto.hashing import sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.wire.codec import Reader, Writer

_UNSIGNED = b"\x00" * SIGNATURE_SIZE

_DOMAIN_READ = b"export/read"
_DOMAIN_READ_REPLY = b"export/read-reply"
_DOMAIN_SYNC = b"export/sync"
_DOMAIN_DELETE = b"export/delete"
_DOMAIN_DELETE_ACK = b"export/delete-ack"
_DOMAIN_FETCH = b"export/fetch"
_DOMAIN_FETCH_REPLY = b"export/fetch-reply"
_DOMAIN_SESSION_RESUME = b"export/session-resume"


@dataclass(frozen=True)
class ReadRequest:
    """Step ①: a data center asks replicas for blocks since ``last_sn``.

    ``full_from`` names the randomly chosen replica that also ships the
    full blocks (step ②); the others send only their latest checkpoint.
    """

    dc_id: str
    last_sn: int
    full_from: str
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.dc_id.encode(), self.last_sn.to_bytes(8, "big"),
                      self.full_from.encode(), domain=_DOMAIN_READ)

    def signed(self, keypair: KeyPair) -> "ReadRequest":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.dc_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.dc_id)
        writer.put_uint(self.last_sn)
        writer.put_str(self.full_from)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ReadRequest":
        reader = Reader(data)
        dc_id = reader.get_str()
        last_sn = reader.get_uint()
        full_from = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(dc_id=dc_id, last_sn=last_sn, full_from=full_from, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ReadReply:
    """Step ②: a replica's latest stable checkpoint, plus blocks if designated."""

    replica_id: str
    checkpoint: CheckpointCertificate | None
    blocks: tuple[Block, ...]
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        cp = self.checkpoint.encode() if self.checkpoint else b""
        return sha256(self.replica_id.encode(), cp,
                      *[block.block_hash for block in self.blocks],
                      domain=_DOMAIN_READ_REPLY)

    def signed(self, keypair: KeyPair) -> "ReadReply":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_bytes(self.checkpoint.encode() if self.checkpoint else b"")
        writer.put_list(list(self.blocks), lambda w, b: w.put_bytes(b.encode()))
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ReadReply":
        reader = Reader(data)
        replica_id = reader.get_str()
        raw_cp = reader.get_bytes()
        checkpoint = CheckpointCertificate.decode(raw_cp) if raw_cp else None
        blocks = reader.get_list(lambda r: Block.decode(r.get_bytes()))
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, checkpoint=checkpoint,
                   blocks=tuple(blocks), signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class DcSync:
    """Step ③: inter-data-center synchronization of the export payload."""

    dc_id: str
    checkpoint: CheckpointCertificate
    blocks: tuple[Block, ...]
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.dc_id.encode(), self.checkpoint.encode(),
                      *[block.block_hash for block in self.blocks],
                      domain=_DOMAIN_SYNC)

    def signed(self, keypair: KeyPair) -> "DcSync":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.dc_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.dc_id)
        writer.put_bytes(self.checkpoint.encode())
        writer.put_list(list(self.blocks), lambda w, b: w.put_bytes(b.encode()))
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DcSync":
        reader = Reader(data)
        dc_id = reader.get_str()
        checkpoint = CheckpointCertificate.decode(reader.get_bytes())
        blocks = reader.get_list(lambda r: Block.decode(r.get_bytes()))
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(dc_id=dc_id, checkpoint=checkpoint, blocks=tuple(blocks),
                   signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class DeleteRequest:
    """Step ⑤: a data center authorizes pruning up to a specific block."""

    dc_id: str
    upto_sn: int
    block_height: int
    block_hash: bytes
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.dc_id.encode(), self.upto_sn.to_bytes(8, "big"),
                      self.block_height.to_bytes(8, "big"), self.block_hash,
                      domain=_DOMAIN_DELETE)

    def signed(self, keypair: KeyPair) -> "DeleteRequest":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.dc_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.dc_id)
        writer.put_uint(self.upto_sn)
        writer.put_uint(self.block_height)
        writer.put_fixed(self.block_hash, 32)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DeleteRequest":
        reader = Reader(data)
        dc_id = reader.get_str()
        upto_sn = reader.get_uint()
        block_height = reader.get_uint()
        block_hash = reader.get_fixed(32)
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(dc_id=dc_id, upto_sn=upto_sn, block_height=block_height,
                   block_hash=block_hash, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class DeleteAck:
    """Step ⑦: a replica confirms it pruned up to ``block_height``."""

    replica_id: str
    block_height: int
    block_hash: bytes
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.replica_id.encode(), self.block_height.to_bytes(8, "big"),
                      self.block_hash, domain=_DOMAIN_DELETE_ACK)

    def signed(self, keypair: KeyPair) -> "DeleteAck":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_uint(self.block_height)
        writer.put_fixed(self.block_hash, 32)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "DeleteAck":
        reader = Reader(data)
        replica_id = reader.get_str()
        block_height = reader.get_uint()
        block_hash = reader.get_fixed(32)
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, block_height=block_height,
                   block_hash=block_hash, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class SessionResume:
    """A recovered replica announces it can serve export traffic again.

    Sent to every known data center after crash recovery: carries the
    replica's chain head so the DC can tell whether the replica is a
    useful ``full_from`` candidate yet, and lets a DC wedged mid-round on
    the crashed replica re-issue its pending read immediately instead of
    waiting out the retry backoff.
    """

    replica_id: str
    chain_height: int
    head_hash: bytes
    incarnation: int
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.replica_id.encode(), self.chain_height.to_bytes(8, "big"),
                      self.head_hash, self.incarnation.to_bytes(8, "big"),
                      domain=_DOMAIN_SESSION_RESUME)

    def signed(self, keypair: KeyPair) -> "SessionResume":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_uint(self.chain_height)
        writer.put_fixed(self.head_hash, 32)
        writer.put_uint(self.incarnation)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "SessionResume":
        reader = Reader(data)
        replica_id = reader.get_str()
        chain_height = reader.get_uint()
        head_hash = reader.get_fixed(32)
        incarnation = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, chain_height=chain_height,
                   head_hash=head_hash, incarnation=incarnation,
                   signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class BlockFetch:
    """Step ④ second round: request specific missing blocks from a replica."""

    dc_id: str
    first_height: int
    last_height: int
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.dc_id.encode(), self.first_height.to_bytes(8, "big"),
                      self.last_height.to_bytes(8, "big"), domain=_DOMAIN_FETCH)

    def signed(self, keypair: KeyPair) -> "BlockFetch":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.dc_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.dc_id)
        writer.put_uint(self.first_height)
        writer.put_uint(self.last_height)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "BlockFetch":
        reader = Reader(data)
        dc_id = reader.get_str()
        first_height = reader.get_uint()
        last_height = reader.get_uint()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(dc_id=dc_id, first_height=first_height,
                   last_height=last_height, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class BlockFetchReply:
    """Blocks served for a :class:`BlockFetch`."""

    replica_id: str
    blocks: tuple[Block, ...]
    signature: bytes = _UNSIGNED

    def signing_payload(self) -> bytes:
        return sha256(self.replica_id.encode(),
                      *[block.block_hash for block in self.blocks],
                      domain=_DOMAIN_FETCH_REPLY)

    def signed(self, keypair: KeyPair) -> "BlockFetchReply":
        return replace(self, signature=keypair.sign(self.signing_payload()))

    def verify(self, keystore: KeyStore) -> bool:
        return keystore.verify(self.replica_id, self.signing_payload(), self.signature)

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_str(self.replica_id)
        writer.put_list(list(self.blocks), lambda w, b: w.put_bytes(b.encode()))
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "BlockFetchReply":
        reader = Reader(data)
        replica_id = reader.get_str()
        blocks = reader.get_list(lambda r: Block.decode(r.get_bytes()))
        signature = reader.get_fixed(SIGNATURE_SIZE)
        reader.expect_end()
        return cls(replica_id=replica_id, blocks=tuple(blocks), signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())
