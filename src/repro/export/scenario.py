"""Export experiment scenario: replicas behind LTE, data centers in the cloud.

Assembles the Table II setup — four replicas with seeded chains connected
over an 8.5 Mbit/s LTE uplink to one or more data centers — and runs
export rounds, reporting per-phase latencies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.export.datacenter import DataCenter, DataCenterConfig, ExportRound
from repro.export.replica_side import ExportConfig, ExportHandler
from repro.export.seed import clone_chain, seed_chain_and_checkpoints
from repro.obs.metrics import ClusterMetrics
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.env import SimEnv
from repro.sim.kernel import Kernel
from repro.sim.network import LinkSpec, Network
from repro.sim.resources import CostModel, CpuAccount
from repro.crypto.keys import KeyStore, default_scheme
from repro.util.rng import RngRegistry


@dataclass(frozen=True)
class ExportScenarioConfig:
    n_replicas: int = 4
    n_datacenters: int = 2
    n_blocks: int = 500
    requests_per_block: int = 10
    payload_bytes: int = 64
    delete_quorum: int = 2
    seed: int = 42
    lte: LinkSpec | None = None


class ExportScenario:
    """One assembled export deployment over a simulated LTE uplink."""

    def __init__(self, config: ExportScenarioConfig,
                 tracer: Tracer | None = None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.kernel = Kernel()
        self.rng = RngRegistry(config.seed)
        self.model = CostModel()
        scheme = default_scheme(fast=True)
        self.network = Network(
            self.kernel, self.rng.stream("lte"),
            config.lte or LinkSpec.lte_uplink(), name="lte",
        )

        self.replica_ids = [f"node-{i}" for i in range(config.n_replicas)]
        self.dc_ids = [f"dc-{i}" for i in range(config.n_datacenters)]
        self.bft_config = BftConfig(replica_ids=tuple(self.replica_ids))
        self.keystore = KeyStore(scheme=scheme)
        keypairs = {}
        for pid in self.replica_ids + self.dc_ids:
            pair = scheme.derive_keypair(pid.encode())
            keypairs[pid] = pair
            self.keystore.register(pid, pair.public)

        chain, certs = seed_chain_and_checkpoints(
            self.bft_config, keypairs, config.n_blocks,
            requests_per_block=config.requests_per_block,
            payload_bytes=config.payload_bytes,
        )
        self._certs = certs

        self.handlers: dict[str, ExportHandler] = {}
        for replica_id in self.replica_ids:
            cpu = CpuAccount(self.kernel, self.model, name=replica_id)
            env = SimEnv(replica_id, self.kernel, self.network, cpu, self.model)
            replica_chain = clone_chain(chain)
            handler = ExportHandler(
                env=env,
                config=ExportConfig(delete_quorum=config.delete_quorum),
                bft_config=self.bft_config,
                keypair=keypairs[replica_id],
                keystore=self.keystore,
                chain=replica_chain,
                latest_checkpoint=self._latest_cert_getter(replica_chain),
                tracer=self.tracer,
            )
            self.handlers[replica_id] = handler
            self.network.register(replica_id, self._replica_inbox(handler))

        # Data centers run on cloud VMs: ingest is effectively free compared
        # to the LTE link, so their inbox dispatches directly.
        self.datacenters: dict[str, DataCenter] = {}
        for dc_id in self.dc_ids:
            cpu = CpuAccount(self.kernel, self.model, name=dc_id)
            env = SimEnv(dc_id, self.kernel, self.network, cpu, self.model)
            dc = DataCenter(
                env=env,
                config=DataCenterConfig(
                    dc_id=dc_id,
                    replica_ids=tuple(self.replica_ids),
                    peer_dc_ids=tuple(p for p in self.dc_ids if p != dc_id),
                ),
                bft_config=self.bft_config,
                keypair=keypairs[dc_id],
                keystore=self.keystore,
                rng=self.rng.stream(f"dc:{dc_id}"),
                tracer=self.tracer,
            )
            self.datacenters[dc_id] = dc
            self.network.register(dc_id, self._dc_inbox(dc))

        # Inter-datacenter traffic rides datacenter fiber, not the train's LTE.
        fiber = LinkSpec(latency_s=5e-3, jitter_s=1e-3, bandwidth_bps=1e9)
        for a in self.dc_ids:
            for b in self.dc_ids:
                if a != b:
                    self.network.set_link(a, b, fiber)

    def _latest_cert_getter(self, chain):
        def latest() -> CheckpointCertificate | None:
            height = chain.height
            while height > chain.base_height:
                cert = self._certs.get(height)
                if cert is not None:
                    return cert
                height -= 1
            return self._certs.get(chain.height)
        return latest

    def _replica_inbox(self, handler: ExportHandler):
        def deliver(src, message, size) -> None:
            handler.handle_message(src, message)
        return deliver

    def _dc_inbox(self, dc: DataCenter):
        def deliver(src, message, size) -> None:
            dc.handle_message(src, message)
        return deliver

    # -- fault control -------------------------------------------------------------

    def crash_replica(self, replica_id: str) -> None:
        """Fail-stop a replica's export endpoint (network-severed)."""
        self.network.crash(replica_id)

    def recover_replica(self, replica_id: str) -> None:
        """Bring a replica back and announce the resumed export session."""
        self.network.recover(replica_id)
        self.handlers[replica_id].resume_sessions(self.dc_ids)

    # -- measurement ---------------------------------------------------------------

    def collect_metrics(self) -> ClusterMetrics:
        """Per-endpoint export counters (replica ExportStats + DC rounds)."""
        cluster = ClusterMetrics()
        for replica_id in self.replica_ids:
            registry = cluster.node(replica_id)
            registry.inc_from(asdict(self.handlers[replica_id].stats),
                              prefix="export.")
        for dc_id in self.dc_ids:
            dc = self.datacenters[dc_id]
            registry = cluster.node(dc_id)
            registry.counter("export.rounds_completed").inc(len(dc.rounds))
            registry.counter("export.rounds_aborted").inc(dc.rounds_aborted)
            registry.counter("export.rounds_retried").inc(dc.rounds_retried)
            registry.counter("export.sessions_resumed").inc(dc.sessions_resumed)
            registry.counter("export.sync_blocks_rejected").inc(
                dc.sync_blocks_rejected
            )
        return cluster

    # -- driving -------------------------------------------------------------------

    def run_export(self, dc_id: str = "dc-0", timeout_s: float = 3600.0) -> ExportRound:
        dc = self.datacenters[dc_id]
        round_ = dc.start_export()
        deadline = self.kernel.now + timeout_s
        while not round_.complete and self.kernel.now < deadline:
            if not self.kernel.step():
                break
        return round_
