"""Replica-side export handling.

Serves read and fetch requests from the local chain and checkpoint store,
and executes deletes once enough distinct data centers have signed them.
Handles the error scenarios of §III-D's discussion:

* (i) a delete arriving before the corresponding block exists is held and
  re-evaluated whenever a block is created;
* (iii) insufficient or mismatching deletes are never executed;
* (v) if deletes are missed and memory runs low, the replica can fall back
  to dropping block bodies while retaining headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.config import BftConfig
from repro.bft.env import Env
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain, PruneCertificate
from repro.crypto.keys import KeyPair, KeyStore
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
    SessionResume,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.util.errors import ChainError


@dataclass(frozen=True)
class ExportConfig:
    """Replica-side export parameters."""

    delete_quorum: int = 2           # distinct data centers required per delete
    max_blocks_per_reply: int = 0    # 0 = unlimited
    emergency_headers_keep: int = 8  # bodies kept when memory runs out


@dataclass
class ExportStats:
    reads_served: int = 0
    blocks_served: int = 0
    deletes_executed: int = 0
    deletes_held: int = 0
    deletes_rejected: int = 0
    fetches_served: int = 0
    sessions_resumed: int = 0


class ExportHandler:
    """One replica's export endpoint, attached to its node."""

    def __init__(
        self,
        env: Env,
        config: ExportConfig,
        bft_config: BftConfig,
        keypair: KeyPair,
        keystore: KeyStore,        # must contain replica AND data-center keys
        chain: Blockchain,
        latest_checkpoint: Callable[[], CheckpointCertificate | None],
        discard_checkpoints_below: Callable[[int], None] = lambda seq: None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.bft_config = bft_config
        self.keypair = keypair
        self.keystore = keystore
        self.chain = chain
        self._latest_checkpoint = latest_checkpoint
        self._discard_checkpoints_below = discard_checkpoints_below
        # (height, hash) -> {dc_id: DeleteRequest}
        self._pending_deletes: dict[tuple[int, bytes], dict[str, DeleteRequest]] = {}
        #: Bumped by :meth:`resume_sessions` after each crash recovery so
        #: data centers can discard announcements from older incarnations.
        self.incarnation = 0
        self.stats = ExportStats()

    # -- dispatch ---------------------------------------------------------------

    def handle_message(self, src: str, message: Any) -> None:
        if isinstance(message, ReadRequest):
            self._on_read(src, message)
        elif isinstance(message, DeleteRequest):
            self._on_delete(src, message)
        elif isinstance(message, BlockFetch):
            self._on_fetch(src, message)

    # -- read (steps ①/②) ---------------------------------------------------------

    def _on_read(self, src: str, request: ReadRequest) -> None:
        if not request.verify(self.keystore):
            return
        checkpoint = self._latest_checkpoint()
        blocks: tuple[Block, ...] = ()
        if checkpoint is not None and request.full_from == self.env.node_id:
            first = max(self.chain.base_height, 0) + 1
            # Blocks the data center does not have yet, up to the checkpoint.
            first_needed = max(first, self._height_after_sn(request.last_sn))
            last = min(checkpoint.block_height, self.chain.height)
            if first_needed <= last:
                served = self.chain.blocks_in_range(first_needed, last)
                if self.config.max_blocks_per_reply:
                    served = served[: self.config.max_blocks_per_reply]
                blocks = tuple(served)
                self.stats.blocks_served += len(blocks)
        reply = ReadReply(
            replica_id=self.env.node_id, checkpoint=checkpoint, blocks=blocks
        ).signed(self.keypair)
        self.stats.reads_served += 1
        if self.tracer.enabled and blocks:
            self.tracer.emit("export.block_sent", self.env.now(), self.env.node_id,
                             dc=request.dc_id, blocks=len(blocks))
        self.env.send(request.dc_id, reply)

    def _height_after_sn(self, last_sn: int) -> int:
        """First stored height whose block covers sequence numbers > last_sn."""
        for height in range(self.chain.base_height, self.chain.height + 1):
            if self.chain.block_at(height).last_sn > last_sn:
                return height
        return self.chain.height + 1

    # -- delete (steps ⑤/⑥/⑦) --------------------------------------------------------

    def _on_delete(self, src: str, delete: DeleteRequest) -> None:
        if not delete.verify(self.keystore):
            self.stats.deletes_rejected += 1
            return
        key = (delete.block_height, delete.block_hash)
        votes = self._pending_deletes.setdefault(key, {})
        votes[delete.dc_id] = delete
        self._try_execute_delete(key)

    def on_block_created(self, block: Block) -> None:
        """Error scenario (i): re-evaluate deletes held for not-yet-built blocks."""
        self._try_execute_delete((block.height, block.block_hash))

    def _try_execute_delete(self, key: tuple[int, bytes]) -> None:
        votes = self._pending_deletes.get(key)
        if votes is None or len(votes) < self.config.delete_quorum:
            return
        height, block_hash = key
        if not self.chain.has_block(height):
            if height > self.chain.height:
                # Block not created yet: hold the delete (scenario i).
                self.stats.deletes_held += 1
                return
            # Already pruned below: the delete is stale, drop it.
            del self._pending_deletes[key]
            return
        block = self.chain.block_at(height)
        if block.block_hash != block_hash:
            self.stats.deletes_rejected += 1
            del self._pending_deletes[key]
            return
        certificate = PruneCertificate(
            base_height=height,
            base_block_hash=block_hash,
            delete_signatures={dc: d.signature for dc, d in votes.items()},
        )
        self.chain.prune_below(height, certificate)
        self._discard_checkpoints_below(block.last_sn)
        self.stats.deletes_executed += 1
        if self.tracer.enabled:
            self.tracer.emit("chain.pruned", self.env.now(), self.env.node_id,
                             below_height=height, block_hash=block_hash.hex())
        ack = DeleteAck(
            replica_id=self.env.node_id, block_height=height, block_hash=block_hash
        ).signed(self.keypair)
        for dc_id in votes:
            self.env.send(dc_id, ack)
        del self._pending_deletes[key]

    # -- crash recovery (session resume) ------------------------------------------------

    def resume_sessions(self, dc_ids: list[str], incarnation: int | None = None) -> None:
        """Announce recovery to every data center (signed SessionResume).

        Called after the hosting replica rebuilt its state from durable
        storage.  A data center whose export round wedged on this replica
        uses the announcement to retry immediately rather than waiting out
        its backoff timer.
        """
        self.incarnation = (
            incarnation if incarnation is not None else self.incarnation + 1
        )
        head = self.chain.head
        announce = SessionResume(
            replica_id=self.env.node_id,
            chain_height=self.chain.height,
            head_hash=head.block_hash,
            incarnation=self.incarnation,
        ).signed(self.keypair)
        self.stats.sessions_resumed += 1
        if self.tracer.enabled:
            self.tracer.emit("export.session.resumed", self.env.now(),
                             self.env.node_id, incarnation=self.incarnation,
                             height=self.chain.height)
        for dc_id in sorted(dc_ids):
            self.env.send(dc_id, announce)

    # -- fetch (step ④, second round) -----------------------------------------------------

    def _on_fetch(self, src: str, fetch: BlockFetch) -> None:
        if not fetch.verify(self.keystore):
            return
        first = max(fetch.first_height, self.chain.base_height)
        last = min(fetch.last_height, self.chain.height)
        blocks = tuple(self.chain.blocks_in_range(first, last)) if first <= last else ()
        reply = BlockFetchReply(replica_id=self.env.node_id, blocks=blocks).signed(self.keypair)
        self.stats.fetches_served += 1
        if self.tracer.enabled and blocks:
            self.tracer.emit("export.block_sent", self.env.now(), self.env.node_id,
                             dc=fetch.dc_id, blocks=len(blocks))
        self.env.send(fetch.dc_id, reply)

    # -- state transfer (error scenario ii) --------------------------------------------------

    def install_state(
        self,
        checkpoint: CheckpointCertificate,
        blocks: list[Block],
        prune_certificate: PruneCertificate | None,
    ) -> None:
        """Adopt a transferred chain segment after full verification.

        The transferred state must include the signed deletes that justify
        the chain base when it does not start at genesis (scenario ii).
        """
        if not checkpoint.verify(self.keystore, self.bft_config):
            raise ChainError("transferred checkpoint certificate does not verify")
        candidate = Blockchain.from_blocks(
            blocks, chain_id=self.chain.chain_id, prune_certificate=prune_certificate
        )
        if candidate.base_height > 0 and prune_certificate is None:
            raise ChainError("transferred pruned chain is missing its delete certificate")
        head = candidate.block_at(checkpoint.block_height)
        if head.block_hash != checkpoint.block_hash:
            raise ChainError("transferred chain does not match the checkpoint")
        self.chain._blocks = candidate._blocks  # adopt verified state
        self.chain.prune_certificate = prune_certificate

    # -- memory-exhaustion fallback (error scenario v) ------------------------------------------

    def emergency_header_prune(self) -> int:
        """Drop old block bodies, keep headers; returns the affected count."""
        keep_from = max(
            self.chain.base_height + 1,
            self.chain.height - self.config.emergency_headers_keep,
        )
        return self.chain.drop_bodies_below(keep_from)
