"""Randomized-but-reproducible chaos campaigns, gated on the oracle.

A campaign names a fault-schedule *generator*: given a seeded RNG stream it
draws a concrete :class:`~repro.chaos.spec.FaultSchedule`, builds a fresh
:class:`~repro.scenarios.cluster.SimulatedCluster` whose master seed is
derived from ``(campaign, seed, index)``, injects the schedule, runs, and
judges the trace with the invariant oracle (OBS001–008).

The replay contract: every run is a pure function of the triple
``(campaign, seed, index)``.  Re-running the triple reproduces the same
schedule (hash-checked), the same trace bytes (sha256-checked), the same
findings, and the same head hashes — a failing campaign run is a
permanent, shareable artifact, not a flake.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field, replace
from random import Random
from typing import Callable

from repro.chaos.inject import ChaosInjector
from repro.chaos.spec import (
    BusSkew,
    ByzantineWindow,
    CrashRecover,
    FaultSchedule,
    LinkDegrade,
    LinkFlap,
    LossWindow,
)
from repro.obs.sinks import encode_event
from repro.obs.trace import RecordingTracer
from repro.scenarios.cluster import ScenarioConfig, SimulatedCluster
from repro.util.errors import ConfigError


def derive_run_seed(campaign: str, seed: int, index: int) -> int:
    """The cluster master seed for one run — stable across processes."""
    material = f"chaos:{campaign}:{seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class Campaign:
    """One named fault-injection experiment."""

    name: str
    description: str
    generate: Callable[[Random], FaultSchedule]
    duration_s: float = 10.0
    #: Post-run drain with the bus stopped: in-flight consensus completes,
    #: so correct nodes converge on one head before the verdict.
    settle_s: float = 3.0
    #: Inverted gate: the run *passes* only if the oracle finds violations
    #: (used to prove the oracle catches what it claims to catch).
    must_fail: bool = False
    config: ScenarioConfig = field(default_factory=ScenarioConfig)


@dataclass
class RunRecord:
    """Everything one campaign run produced, replay-comparable."""

    campaign: str
    seed: int
    index: int
    run_seed: int
    schedule_hash: str
    n_faults: int
    duration_s: float
    faults_applied: int
    faults_cleared: int
    findings: list[dict]
    head_hashes: dict[str, str]
    converged: bool
    counters: dict[str, int]
    trace_events: int
    trace_sha256: str
    passed: bool

    def to_dict(self) -> dict:
        return {
            "campaign": self.campaign,
            "seed": self.seed,
            "index": self.index,
            "run_seed": self.run_seed,
            "schedule_hash": self.schedule_hash,
            "n_faults": self.n_faults,
            "duration_s": self.duration_s,
            "faults_applied": self.faults_applied,
            "faults_cleared": self.faults_cleared,
            "findings": self.findings,
            "head_hashes": self.head_hashes,
            "converged": self.converged,
            "counters": self.counters,
            "trace_events": self.trace_events,
            "trace_sha256": self.trace_sha256,
            "passed": self.passed,
        }


# ---------------------------------------------------------------------------
# Schedule generators (all draws from the single campaign RNG stream)
# ---------------------------------------------------------------------------


def _pick_node(rng: Random, n: int = 4) -> str:
    return f"node-{rng.randrange(n)}"


def _gen_gray_failure(rng: Random) -> FaultSchedule:
    """Degraded links, short loss windows, and one flapping link."""
    faults = []
    t = 1.0
    for _ in range(rng.randrange(2, 4)):
        src, dst = _pick_node(rng), _pick_node(rng)
        faults.append(LinkDegrade(
            start_s=round(t, 3),
            duration_s=round(1.0 + rng.random() * 1.5, 3),
            src=src, dst="*" if rng.random() < 0.3 else dst,
            latency_s=round(2e-3 + rng.random() * 15e-3, 6),
            jitter_s=round(0.5e-3 + rng.random() * 3e-3, 6),
            loss_prob=round(rng.random() * 0.05, 3),
        ))
        t += 0.7 + rng.random()
    faults.append(LossWindow(
        start_s=round(t, 3),
        duration_s=round(0.8 + rng.random() * 0.8, 3),
        src=_pick_node(rng), dst="*",
        loss_prob=round(0.05 + rng.random() * 0.10, 3),
    ))
    t += 1.5 + rng.random()
    faults.append(LinkFlap(
        start_s=round(t, 3),
        duration_s=round(0.2 + rng.random() * 0.3, 3),
        src=_pick_node(rng), dst=_pick_node(rng),
        flaps=rng.randrange(2, 4),
        up_s=round(0.3 + rng.random() * 0.4, 3),
    ))
    return FaultSchedule(tuple(faults))


def _gen_crash_storm(rng: Random) -> FaultSchedule:
    """Sequential fail-stop crashes with recovery and StateSync rejoin.

    One node down at a time (n=4 tolerates f=1), with enough headroom
    after each recovery for the next stable checkpoint to trigger sync.
    """
    faults = []
    t = 1.5
    for _ in range(2):
        node = _pick_node(rng)
        down = round(1.0 + rng.random() * 1.0, 3)
        faults.append(CrashRecover(start_s=round(t, 3), duration_s=down, node=node))
        t += down + 3.5 + rng.random()
    return FaultSchedule(tuple(faults))


def _gen_clock_skew(rng: Random) -> FaultSchedule:
    """Skewed bus cycles: devices fall behind the master's synchronous instant."""
    faults = []
    t = 1.0
    for _ in range(rng.randrange(2, 4)):
        faults.append(BusSkew(
            start_s=round(t, 3),
            duration_s=round(1.0 + rng.random() * 1.5, 3),
            node=_pick_node(rng),
            skew_s=round(0.005 + rng.random() * 0.025, 4),
        ))
        t += 1.2 + rng.random()
    return FaultSchedule(tuple(faults))


def _gen_fabrication(rng: Random) -> FaultSchedule:
    """A windowed fabrication attack the oracle must flag (OBS003)."""
    return FaultSchedule((
        ByzantineWindow(
            start_s=round(1.0 + rng.random(), 3),
            duration_s=round(1.5 + rng.random() * 1.5, 3),
            node=_pick_node(rng),
            fabricate_per_cycle=round(0.3 + rng.random() * 0.5, 3),
        ),
    ))


CAMPAIGNS: dict[str, Campaign] = {
    campaign.name: campaign
    for campaign in (
        Campaign(
            name="gray-failure",
            description="degraded/flapping links and loss windows on the "
                        "consensus Ethernet; the chain must stay clean",
            generate=_gen_gray_failure,
            duration_s=10.0,
        ),
        Campaign(
            name="crash-recovery-storm",
            description="sequential fail-stop crashes; recovered nodes must "
                        "rejoin via StateSync and converge on one head",
            generate=_gen_crash_storm,
            duration_s=14.0,
            settle_s=4.0,
        ),
        Campaign(
            name="clock-skew",
            description="MVB cycle delivery skewed per device; ordering and "
                        "the juridical invariants must hold",
            generate=_gen_clock_skew,
            duration_s=8.0,
        ),
        Campaign(
            name="fabrication",
            description="windowed Byzantine fabrication; PASSES only if the "
                        "oracle flags the attack (must-fail gate)",
            generate=_gen_fabrication,
            duration_s=6.0,
            must_fail=True,
        ),
    )
}


def get_campaign(name: str) -> Campaign:
    campaign = CAMPAIGNS.get(name)
    if campaign is None:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ConfigError(f"unknown campaign {name!r} (known: {known})")
    return campaign


# ---------------------------------------------------------------------------
# Running and replaying
# ---------------------------------------------------------------------------


def run_one(
    campaign: Campaign,
    seed: int,
    index: int,
    trace_path: str | None = None,
) -> RunRecord:
    """Execute one run of ``campaign``; pure in ``(campaign, seed, index)``."""
    run_seed = derive_run_seed(campaign.name, seed, index)
    schedule = campaign.generate(Random(run_seed)).canonical()
    config = replace(
        campaign.config,
        seed=run_seed,
        byzantine={**campaign.config.byzantine, **schedule.byzantine_specs()},
    )
    tracer = RecordingTracer()
    cluster = SimulatedCluster(config, tracer=tracer)
    injector = ChaosInjector(cluster, schedule)
    injector.install()
    cluster.run(duration_s=campaign.duration_s)

    # Settle: stop the bus, drain in-flight consensus and recoveries so the
    # verdict sees the converged end state, not a mid-decide snapshot.
    cluster.master.stop()
    cluster.kernel.run_until(cluster.kernel.now + campaign.settle_s)

    report = cluster.check_invariants()
    findings = report.to_dicts()
    head_hashes = {
        node_id: cluster.nodes[node_id].chain.head.block_hash.hex()
        for node_id in cluster.ids
        if not cluster.network.is_crashed(node_id)
    }
    converged = len(set(head_hashes.values())) <= 1
    trace_blob = "".join(
        encode_event(event) + "\n" for event in tracer.iter_events()
    ).encode()
    if trace_path is not None:
        parent = os.path.dirname(trace_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(trace_path, "wb") as handle:
            handle.write(trace_blob)

    passed = bool(findings) if campaign.must_fail else (not findings and converged)
    return RunRecord(
        campaign=campaign.name,
        seed=seed,
        index=index,
        run_seed=run_seed,
        schedule_hash=schedule.schedule_hash(),
        n_faults=len(schedule),
        duration_s=campaign.duration_s,
        faults_applied=injector.faults_applied,
        faults_cleared=injector.faults_cleared,
        findings=findings,
        head_hashes=head_hashes,
        converged=converged,
        counters=cluster.aggregate_metrics().counter_values(),
        trace_events=len(tracer),
        trace_sha256=hashlib.sha256(trace_blob).hexdigest(),
        passed=passed,
    )


def run_campaign(
    name: str,
    seed: int,
    runs: int = 1,
    trace_dir: str | None = None,
) -> list[RunRecord]:
    """Run ``runs`` independent draws of the campaign; never raises per-run."""
    if runs < 1:
        raise ConfigError(f"need at least one run (got {runs})")
    campaign = get_campaign(name)
    records = []
    for index in range(runs):
        trace_path = None
        if trace_dir is not None:
            trace_path = f"{trace_dir}/{name}-s{seed}-i{index}.trace.jsonl"
        records.append(run_one(campaign, seed, index, trace_path=trace_path))
    return records


def replay_run(
    name: str,
    seed: int,
    index: int,
    trace_path: str | None = None,
) -> RunRecord:
    """Re-execute exactly one ``(campaign, seed, index)`` triple.

    Byte-identity with the original run is the contract: compare
    ``schedule_hash``, ``trace_sha256``, ``findings``, and
    ``head_hashes`` — all four must match.
    """
    return run_one(get_campaign(name), seed, index, trace_path=trace_path)
