"""Chaos campaign engine: declarative fault injection over the simulated testbed.

Three layers:

* :mod:`repro.chaos.spec` — the DSL: frozen, hashable fault specs
  (:class:`LinkDegrade`, :class:`LinkFlap`, :class:`LossWindow`,
  :class:`BusSkew`, :class:`CrashRecover`, :class:`ByzantineWindow`)
  composed into a :class:`FaultSchedule`;
* :mod:`repro.chaos.inject` — :class:`ChaosInjector` arms a schedule
  against a live :class:`~repro.scenarios.cluster.SimulatedCluster`;
* :mod:`repro.chaos.campaign` — named, seeded campaigns gated on the
  invariant oracle, replayable byte-identically from
  ``(campaign, seed, index)``.
"""

from repro.chaos.campaign import (
    CAMPAIGNS,
    Campaign,
    RunRecord,
    derive_run_seed,
    get_campaign,
    replay_run,
    run_campaign,
    run_one,
)
from repro.chaos.inject import ChaosInjector
from repro.chaos.spec import (
    BusSkew,
    ByzantineWindow,
    CrashRecover,
    FaultSchedule,
    FaultSpec,
    LinkDegrade,
    LinkFlap,
    LossWindow,
)

__all__ = [
    "BusSkew",
    "ByzantineWindow",
    "CAMPAIGNS",
    "Campaign",
    "ChaosInjector",
    "CrashRecover",
    "FaultSchedule",
    "FaultSpec",
    "LinkDegrade",
    "LinkFlap",
    "LossWindow",
    "RunRecord",
    "derive_run_seed",
    "get_campaign",
    "replay_run",
    "run_campaign",
    "run_one",
]
