"""The fault-injection DSL: frozen specs composed into a schedule.

A :class:`FaultSpec` is a pure value — frozen, hashable, with a canonical
:meth:`~FaultSpec.describe` string — so schedules can be hashed, compared,
and replayed byte-identically.  The taxonomy mirrors §III-C's fault model:

=====================  =====================================================
spec                   injected failure
=====================  =====================================================
:class:`LinkDegrade`   gray failure: one link (wildcards allowed) runs with
                       elevated latency/jitter/loss for a window
:class:`LinkFlap`      link repeatedly goes fully down and comes back
:class:`LossWindow`    probabilistic message loss across the fabric (or one
                       pair) for a window, baseline characteristics kept
:class:`BusSkew`       a device's MVB cycles are delivered late — a skewed
                       local clock relative to the bus master
:class:`CrashRecover`  fail-stop crash losing all in-memory state, followed
                       by recovery from durable storage and StateSync rejoin
:class:`ByzantineWindow`  a pre-built Byzantine node's behaviour is switched
                       on only inside the window (fabrication rate and/or
                       primary proposal delay)
=====================  =====================================================

Specs only *describe* faults; :class:`~repro.chaos.inject.ChaosInjector`
applies them to a live :class:`~repro.scenarios.cluster.SimulatedCluster`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Iterator

from repro.faults.behaviors import ByzantineSpec
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class FaultSpec:
    """Base class: one timed fault starting at ``start_s``."""

    start_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigError(f"fault cannot start before t=0 (got {self.start_s})")

    @property
    def end_s(self) -> float:
        """When the fault clears; instantaneous faults return ``start_s``."""
        return self.start_s

    def describe(self) -> str:
        """Canonical one-line form — the unit of schedule hashing."""
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{type(self).__name__}({parts})"


@dataclass(frozen=True)
class _WindowedFault(FaultSpec):
    """Shared validation for faults active over ``[start_s, end_s)``."""

    duration_s: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise ConfigError(
                f"fault window needs a positive duration (got {self.duration_s})"
            )

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class LinkDegrade(_WindowedFault):
    """Gray failure: the ``src→dst`` link runs degraded for the window.

    Either endpoint may be ``"*"`` (whole-node ingress/egress, or the
    entire fabric).  The degraded characteristics are given absolutely —
    the fault fully defines the :class:`~repro.sim.network.LinkSpec` in
    force during the window; clearing restores the permanent topology.
    """

    src: str = "*"
    dst: str = "*"
    latency_s: float = 5e-3
    jitter_s: float = 1e-3
    loss_prob: float = 0.0
    bandwidth_bps: float = 100e6

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ConfigError(f"loss_prob outside [0, 1]: {self.loss_prob}")
        if self.latency_s < 0 or self.jitter_s < 0 or self.bandwidth_bps <= 0:
            raise ConfigError(f"implausible degraded link: {self.describe()}")


@dataclass(frozen=True)
class LinkFlap(_WindowedFault):
    """The link goes fully down and back up, ``flaps`` times.

    Each flap is ``duration_s`` down followed by ``up_s`` up; the last up
    phase restores the permanent topology.
    """

    src: str = "*"
    dst: str = "*"
    flaps: int = 1
    up_s: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.flaps < 1:
            raise ConfigError(f"a flap fault needs flaps >= 1 (got {self.flaps})")
        if self.up_s <= 0:
            raise ConfigError(f"flap up time must be positive (got {self.up_s})")

    @property
    def end_s(self) -> float:
        return self.start_s + self.flaps * (self.duration_s + self.up_s)


@dataclass(frozen=True)
class LossWindow(_WindowedFault):
    """Probabilistic message loss for a window, baseline link otherwise kept.

    Unlike :class:`LinkDegrade` this only raises ``loss_prob``; latency,
    jitter, and bandwidth stay at the fabric's default-link values.
    """

    src: str = "*"
    dst: str = "*"
    loss_prob: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.loss_prob <= 1.0:
            raise ConfigError(f"loss_prob outside (0, 1]: {self.loss_prob}")


@dataclass(frozen=True)
class BusSkew(_WindowedFault):
    """One device's bus cycles arrive ``skew_s`` late for the window."""

    node: str = "node-0"
    skew_s: float = 0.01

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.skew_s <= 0:
            raise ConfigError(f"bus skew must be positive (got {self.skew_s})")


@dataclass(frozen=True)
class CrashRecover(_WindowedFault):
    """Fail-stop crash at ``start_s``; recovery after ``duration_s`` down.

    Crashing loses all in-memory state (timers, open requests, watermarks);
    recovery rehydrates the chain from the node's durable store and rejoins
    via StateSync once f+1 peer checkpoints vouch for the missed progress.
    A negative-duration spec (never recover) is expressed by a duration
    past the run horizon.
    """

    node: str = "node-0"


@dataclass(frozen=True)
class ByzantineWindow(_WindowedFault):
    """Switch a node's Byzantine behaviour on only inside the window.

    The node must be *built* Byzantine (its :class:`ByzantineSpec` in the
    scenario config carries the same rates — :meth:`FaultSchedule.byzantine_specs`
    derives that config), so the injector only modulates the live rate:
    zero outside the window, the spec's rate inside.
    """

    node: str = "node-0"
    fabricate_per_cycle: float = 0.0
    preprepare_delay_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.fabricate_per_cycle <= 1.0:
            raise ConfigError(
                f"fabricate_per_cycle outside [0, 1]: {self.fabricate_per_cycle}"
            )
        if self.preprepare_delay_s < 0:
            raise ConfigError(
                f"preprepare delay cannot be negative: {self.preprepare_delay_s}"
            )
        if self.fabricate_per_cycle == 0 and self.preprepare_delay_s == 0:
            raise ConfigError("a ByzantineWindow must enable at least one behaviour")


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, hashable composition of fault specs."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise ConfigError(f"not a FaultSpec: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def canonical(self) -> "FaultSchedule":
        """Deterministic order: by start time, then by description."""
        ordered = sorted(self.faults, key=lambda f: (f.start_s, f.describe()))
        return FaultSchedule(faults=tuple(ordered))

    @property
    def horizon_s(self) -> float:
        """Virtual time by which every fault has cleared."""
        return max((fault.end_s for fault in self.faults), default=0.0)

    def describe(self) -> str:
        return "\n".join(fault.describe() for fault in self.canonical())

    def schedule_hash(self) -> str:
        """SHA-256 over the canonical description — the replay fingerprint."""
        return hashlib.sha256(self.describe().encode()).hexdigest()

    def byzantine_specs(self) -> dict[str, ByzantineSpec]:
        """Scenario ``byzantine=`` config needed to host the windows.

        A :class:`ByzantineWindow` requires the node to be built with the
        fabricating/delaying machinery; this folds every window into one
        per-node :class:`ByzantineSpec` carrying the maximum rates (the
        injector zeroes them outside the windows).
        """
        specs: dict[str, ByzantineSpec] = {}
        for fault in self.faults:
            if not isinstance(fault, ByzantineWindow):
                continue
            current = specs.get(fault.node, ByzantineSpec())
            specs[fault.node] = ByzantineSpec(
                fabricate_per_cycle=max(
                    current.fabricate_per_cycle, fault.fabricate_per_cycle
                ),
                preprepare_delay_s=max(
                    current.preprepare_delay_s, fault.preprepare_delay_s
                ),
            )
        return specs
