"""Apply a :class:`~repro.chaos.spec.FaultSchedule` to a live cluster.

The injector translates declarative fault specs into kernel-scheduled
callbacks against a :class:`~repro.scenarios.cluster.SimulatedCluster`:
link overrides on the simulated Ethernet, skewed MVB deliveries, fail-stop
crashes with durable-store recovery, and windowed Byzantine behaviour.
Every application and clearance is traced (``chaos.fault.applied`` /
``chaos.fault.cleared``) so a campaign's trace is self-describing: the
oracle's verdict and the faults it was asked to survive travel together.
"""

from __future__ import annotations

from dataclasses import replace

from repro.chaos.spec import (
    BusSkew,
    ByzantineWindow,
    CrashRecover,
    FaultSchedule,
    FaultSpec,
    LinkDegrade,
    LinkFlap,
    LossWindow,
)
from repro.obs.trace import Tracer
from repro.scenarios.cluster import SimulatedCluster
from repro.sim.network import LinkSpec
from repro.util.errors import ConfigError


class ChaosInjector:
    """Arms one schedule against one cluster; single-use."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        schedule: FaultSchedule,
        tracer: Tracer | None = None,
    ) -> None:
        self.cluster = cluster
        self.schedule = schedule.canonical()
        self.tracer = tracer if tracer is not None else cluster.tracer
        self.faults_applied = 0
        self.faults_cleared = 0
        self._installed = False

    # -- arming ----------------------------------------------------------------

    def install(self) -> None:
        """Schedule every fault's apply/clear callbacks on the kernel.

        Byzantine-window nodes are neutralized immediately (their built-in
        rates belong to the windows, not the whole run).
        """
        if self._installed:
            raise ConfigError("chaos schedule already installed")
        self._installed = True
        for fault in self.schedule:
            if isinstance(fault, ByzantineWindow):
                self._set_byzantine_rates(fault.node, 0.0, 0.0)
        for fault in self.schedule:
            self._arm(fault)

    def _arm(self, fault: FaultSpec) -> None:
        kernel = self.cluster.kernel
        if isinstance(fault, LinkDegrade):
            spec = LinkSpec(
                latency_s=fault.latency_s,
                jitter_s=fault.jitter_s,
                bandwidth_bps=fault.bandwidth_bps,
                loss_prob=fault.loss_prob,
            )
            kernel.schedule_at(
                fault.start_s, lambda f=fault, s=spec: self._apply_link(f, s)
            )
            kernel.schedule_at(fault.end_s, lambda f=fault: self._clear_link(f))
        elif isinstance(fault, LossWindow):
            base = self.cluster.network.default_link
            spec = replace(base, loss_prob=fault.loss_prob)
            kernel.schedule_at(
                fault.start_s, lambda f=fault, s=spec: self._apply_link(f, s)
            )
            kernel.schedule_at(fault.end_s, lambda f=fault: self._clear_link(f))
        elif isinstance(fault, LinkFlap):
            down = replace(self.cluster.network.default_link, loss_prob=1.0)
            period = fault.duration_s + fault.up_s
            for flap in range(fault.flaps):
                t_down = fault.start_s + flap * period
                kernel.schedule_at(
                    t_down, lambda f=fault, s=down: self._apply_link(f, s)
                )
                kernel.schedule_at(
                    t_down + fault.duration_s, lambda f=fault: self._clear_link(f)
                )
        elif isinstance(fault, BusSkew):
            kernel.schedule_at(fault.start_s, lambda f=fault: self._apply_skew(f))
            kernel.schedule_at(fault.end_s, lambda f=fault: self._clear_skew(f))
        elif isinstance(fault, CrashRecover):
            kernel.schedule_at(fault.start_s, lambda f=fault: self._apply_crash(f))
            kernel.schedule_at(fault.end_s, lambda f=fault: self._clear_crash(f))
        elif isinstance(fault, ByzantineWindow):
            kernel.schedule_at(
                fault.start_s, lambda f=fault: self._apply_byzantine(f)
            )
            kernel.schedule_at(
                fault.end_s, lambda f=fault: self._clear_byzantine(f)
            )
        else:
            raise ConfigError(f"no injector for fault {type(fault).__name__}")

    # -- per-kind handlers ----------------------------------------------------

    def _apply_link(self, fault, spec: LinkSpec) -> None:
        self.cluster.network.set_link_override(fault.src, fault.dst, spec)
        self._trace_applied(fault, self._link_subject(fault))

    def _clear_link(self, fault) -> None:
        self.cluster.network.clear_link_override(fault.src, fault.dst)
        self._trace_cleared(fault, self._link_subject(fault))

    def _apply_skew(self, fault: BusSkew) -> None:
        self.cluster.master.set_skew(fault.node, fault.skew_s)
        self._trace_applied(fault, fault.node)

    def _clear_skew(self, fault: BusSkew) -> None:
        self.cluster.master.set_skew(fault.node, 0.0)
        self._trace_cleared(fault, fault.node)

    def _apply_crash(self, fault: CrashRecover) -> None:
        self.cluster.crash_node(fault.node)
        self._trace_applied(fault, fault.node)

    def _clear_crash(self, fault: CrashRecover) -> None:
        self.cluster.recover_node(fault.node)
        self._trace_cleared(fault, fault.node)

    def _apply_byzantine(self, fault: ByzantineWindow) -> None:
        self._set_byzantine_rates(
            fault.node, fault.fabricate_per_cycle, fault.preprepare_delay_s
        )
        self._trace_applied(fault, fault.node)

    def _clear_byzantine(self, fault: ByzantineWindow) -> None:
        self._set_byzantine_rates(fault.node, 0.0, 0.0)
        self._trace_cleared(fault, fault.node)

    def _set_byzantine_rates(
        self, node_id: str, fabricate: float, delay_s: float
    ) -> None:
        # Resolved at fire time: recovery may have swapped the node object.
        node = self.cluster.nodes[node_id]
        if hasattr(node, "_fabricate_per_cycle"):
            node._fabricate_per_cycle = fabricate
        replica = getattr(node, "replica", None)
        if replica is not None and hasattr(replica, "_preprepare_delay_s"):
            replica._preprepare_delay_s = delay_s

    # -- tracing ---------------------------------------------------------------

    def _link_subject(self, fault) -> str:
        # Trace events need a node; wildcards attribute to the first node.
        for endpoint in (fault.dst, fault.src):
            if endpoint != "*":
                return endpoint
        return self.cluster.ids[0]

    def _trace_applied(self, fault: FaultSpec, subject: str) -> None:
        self.faults_applied += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "chaos.fault.applied", self.cluster.kernel.now, subject,
                fault=type(fault).__name__, spec=fault.describe(),
            )

    def _trace_cleared(self, fault: FaultSpec, subject: str) -> None:
        self.faults_cleared += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "chaos.fault.cleared", self.cluster.kernel.now, subject,
                fault=type(fault).__name__, spec=fault.describe(),
            )
