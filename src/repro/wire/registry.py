"""Self-describing message envelopes: type tag + body.

Used wherever messages cross a process boundary for real — disk
persistence, export payload framing, and transport round-trip tests.
Each message module registers its types at import time.
"""

from __future__ import annotations

from typing import Callable

from repro.util.errors import CodecError
from repro.util.varint import decode_bytes, decode_uvarint, encode_bytes, encode_uvarint

_DECODERS: dict[int, Callable[[bytes], object]] = {}
_TAGS: dict[type, int] = {}


def register_message_type(tag: int, cls: type, decoder: Callable[[bytes], object] | None = None) -> None:
    """Register ``cls`` (with an ``encode`` method) under wire ``tag``."""
    if tag in _DECODERS and _DECODERS[tag] is not (decoder or cls.decode):
        raise CodecError(f"wire tag {tag} already registered")
    _DECODERS[tag] = decoder or cls.decode
    _TAGS[cls] = tag


def encode_message(message: object) -> bytes:
    """Encode ``message`` with its registered type tag prefix."""
    tag = _TAGS.get(type(message))
    if tag is None:
        raise CodecError(f"message type {type(message).__name__} not registered")
    return encode_uvarint(tag) + encode_bytes(message.encode())  # type: ignore[attr-defined]


def decode_message(data: bytes) -> tuple[object, int]:
    """Decode one tagged message; returns ``(message, bytes_consumed)``."""
    tag, pos = decode_uvarint(data)
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown wire tag {tag}")
    body, end = decode_bytes(data, pos)
    return decoder(body), end
