"""Self-describing message envelopes: type tag + body.

Used wherever messages cross a process boundary for real — disk
persistence, export payload framing, and transport round-trip tests.
Each message module registers its types at import time.

Registration is strict: a tag permanently belongs to the first class
registered under it, and a class to its first tag.  Re-registering the
same ``(tag, cls)`` pair is an idempotent no-op (modules may be imported
through several paths); any conflicting registration raises
:class:`~repro.util.errors.CodecError` instead of silently shadowing the
earlier binding — silent shadowing is exactly the class of bug zuglint's
PROTO002 rule exists to catch statically.
"""

from __future__ import annotations

from typing import Callable

from repro.util.errors import CodecError
from repro.util.varint import decode_bytes, decode_uvarint, encode_bytes, encode_uvarint

_DECODERS: dict[int, Callable[[bytes], object]] = {}
_CLASSES: dict[int, type] = {}
_TAGS: dict[type, int] = {}


def register_message_type(tag: int, cls: type, decoder: Callable[[bytes], object] | None = None) -> None:
    """Register ``cls`` (with an ``encode`` method) under wire ``tag``.

    Raises :class:`CodecError` if ``tag`` is already bound to a different
    class, or ``cls`` is already bound to a different tag.
    """
    registered = _CLASSES.get(tag)
    if registered is not None and registered is not cls:
        raise CodecError(
            f"wire tag {tag} already registered for {registered.__name__}; "
            f"refusing to rebind it to {cls.__name__}"
        )
    existing_tag = _TAGS.get(cls)
    if existing_tag is not None and existing_tag != tag:
        raise CodecError(
            f"message type {cls.__name__} already registered under tag "
            f"{existing_tag}; refusing to also register it under {tag}"
        )
    _CLASSES[tag] = cls
    _DECODERS[tag] = decoder or cls.decode
    _TAGS[cls] = tag


def registered_types() -> dict[int, type]:
    """Snapshot of every ``tag → class`` binding, for introspection.

    Consumed by the dynamic round-trip test (every registered type must
    encode/decode through the envelope) and available to tooling.
    """
    return dict(_CLASSES)


def encode_message(message: object) -> bytes:
    """Encode ``message`` with its registered type tag prefix."""
    tag = _TAGS.get(type(message))
    if tag is None:
        raise CodecError(f"message type {type(message).__name__} not registered")
    return encode_uvarint(tag) + encode_bytes(message.encode())  # type: ignore[attr-defined]


def decode_message(data: bytes) -> tuple[object, int]:
    """Decode one tagged message; returns ``(message, bytes_consumed)``."""
    tag, pos = decode_uvarint(data)
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise CodecError(f"unknown wire tag {tag}")
    body, end = decode_bytes(data, pos)
    return decoder(body), end
