"""Canonical wire-tag assignments for every encodable message type.

Importing this module registers all message types with the envelope
registry (:mod:`repro.wire.registry`), enabling self-describing framing
for disk persistence and transport round-trip tests.  Tags are stable API:
never renumber, only append.
"""

from repro.bft.checkpoint import CheckpointCertificate
from repro.bft.client import ClientRequestWrapper, Reply
from repro.bft.linear import CommitCert, Vote
from repro.bft.messages import (
    Checkpoint,
    Commit,
    DecideFetch,
    DecideProof,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    ViewChange,
)
from repro.chain.block import Block, BlockHeader
from repro.core.messages import ZugBroadcast, ZugForward
from repro.core.statesync import StateReply, StateRequest
from repro.export.messages import (
    BlockFetch,
    BlockFetchReply,
    DcSync,
    DeleteAck,
    DeleteRequest,
    ReadReply,
    ReadRequest,
    SessionResume,
)
from repro.obs.causal import CausalContext
from repro.wire.messages import Request, SignedRequest
from repro.wire.registry import register_message_type

WIRE_TAGS = {
    1: Request,
    2: SignedRequest,
    10: PrePrepare,
    11: Prepare,
    12: Commit,
    13: Checkpoint,
    14: ViewChange,
    15: NewView,
    16: CheckpointCertificate,
    17: PreparedProof,
    18: Vote,
    19: CommitCert,
    20: ClientRequestWrapper,
    21: Reply,
    30: ZugBroadcast,
    31: ZugForward,
    32: StateRequest,
    33: StateReply,
    40: BlockHeader,
    41: Block,
    50: ReadRequest,
    51: ReadReply,
    52: DcSync,
    53: DeleteRequest,
    54: DeleteAck,
    55: BlockFetch,
    56: BlockFetchReply,
    57: SessionResume,
    58: DecideFetch,
    59: DecideProof,
    60: CausalContext,
}

for _tag, _cls in WIRE_TAGS.items():
    register_message_type(_tag, _cls)
