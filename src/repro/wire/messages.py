"""Core request types shared by the bus, consensus, and chain layers.

A :class:`Request` is the unit the BFT layer orders: all signals read from
the bus in one cycle, consolidated into one payload (§III-B "All signals
transmitted in a bus cycle are consolidated into one BFT request").  Its
identity for duplicate filtering is the payload digest — ZugChain filters
on *content*, unlike PBFT which dedups on (client id, sequence number).

A :class:`SignedRequest` wraps a request with the id and signature of the
node that proposes or broadcasts it (Alg. 1 ``sign(req, id)``), so every
logged entry carries the identity of a node that actually received it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import DOMAIN_REQUEST, sha256
from repro.crypto.keys import SIGNATURE_SIZE, KeyPair, KeyStore
from repro.wire.codec import Reader, Writer


@dataclass(frozen=True)
class Request:
    """One bus cycle's consolidated, parsed signal data."""

    payload: bytes
    bus_cycle: int
    recv_timestamp_us: int
    source_link: str = "mvb0"

    @cached_property
    def digest(self) -> bytes:
        """Content digest used for duplicate filtering.

        Deliberately excludes ``recv_timestamp_us``: two nodes reading the
        same telegram observe slightly different local times, and filtering
        must still identify their payloads as duplicates.  The bus cycle
        number and source link are part of the content — the same signal
        values in different cycles are distinct events.
        """
        return sha256(
            self.payload,
            self.bus_cycle.to_bytes(8, "big"),
            self.source_link.encode(),
            domain=DOMAIN_REQUEST,
        )

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_bytes(self.payload)
        writer.put_uint(self.bus_cycle)
        writer.put_uint(self.recv_timestamp_us)
        writer.put_str(self.source_link)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Request":
        reader = Reader(data)
        request = cls.read_from(reader)
        reader.expect_end()
        return request

    @classmethod
    def read_from(cls, reader: Reader) -> "Request":
        payload = reader.get_bytes()
        bus_cycle = reader.get_uint()
        recv_timestamp_us = reader.get_uint()
        source_link = reader.get_str()
        return cls(
            payload=payload,
            bus_cycle=bus_cycle,
            recv_timestamp_us=recv_timestamp_us,
            source_link=source_link,
        )

    def write_to(self, writer: Writer) -> None:
        writer.put_bytes(self.encode())

    def encoded_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class SignedRequest:
    """A request authenticated by the node that submits it to consensus."""

    request: Request
    node_id: str
    signature: bytes

    @staticmethod
    def create(request: Request, node_id: str, keypair: KeyPair) -> "SignedRequest":
        payload = SignedRequest._signing_payload(request, node_id)
        return SignedRequest(request=request, node_id=node_id, signature=keypair.sign(payload))

    @staticmethod
    def _signing_payload(request: Request, node_id: str) -> bytes:
        return sha256(request.digest, node_id.encode(), domain=DOMAIN_REQUEST)

    def verify(self, keystore: KeyStore) -> bool:
        payload = self._signing_payload(self.request, self.node_id)
        return keystore.verify(self.node_id, payload, self.signature)

    @property
    def digest(self) -> bytes:
        return self.request.digest

    def encode(self) -> bytes:
        writer = Writer()
        writer.put_bytes(self.request.encode())
        writer.put_str(self.node_id)
        writer.put_fixed(self.signature, SIGNATURE_SIZE)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "SignedRequest":
        reader = Reader(data)
        signed = cls.read_from(reader)
        reader.expect_end()
        return signed

    @classmethod
    def read_from(cls, reader: Reader) -> "SignedRequest":
        request = Request.decode(reader.get_bytes())
        node_id = reader.get_str()
        signature = reader.get_fixed(SIGNATURE_SIZE)
        return cls(request=request, node_id=node_id, signature=signature)

    def encoded_size(self) -> int:
        return len(self.encode())


#: Reserved source link marking a no-op filler request.  A new primary uses
#: these to plug sequence-number holes left by a view change (classic PBFT
#: assigns "null requests" to gaps so in-order execution never stalls on a
#: number nobody proposed).  The communication layer drops them on decide:
#: they consume a sequence number but never reach the blockchain.
NULL_SOURCE_LINK = "bft/null"


def null_request(seq: int) -> Request:
    """A deterministic no-op request filling sequence number ``seq``.

    The sequence number doubles as the bus-cycle field so each filler has
    a distinct content digest — identical digests would trip the layer's
    duplicate-primary detection.
    """
    return Request(
        payload=b"", bus_cycle=seq, recv_timestamp_us=0,
        source_link=NULL_SOURCE_LINK,
    )


def is_null_request(request: Request) -> bool:
    return request.source_link == NULL_SOURCE_LINK and not request.payload
