"""Binary writer/reader over the varint primitives.

Every message type implements ``encode()`` with a :class:`Writer` and a
``decode()`` classmethod with a :class:`Reader`.  The style is deliberately
explicit — one line per field, symmetric between the two directions — so a
reviewer can audit that signing payloads cover exactly the intended fields.
"""

from __future__ import annotations

from repro.util.errors import CodecError
from repro.util.varint import decode_uvarint, encode_uvarint


class Writer:
    """Accumulates encoded fields into a byte buffer."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def put_uint(self, value: int) -> "Writer":
        self._parts.append(encode_uvarint(value))
        return self

    def put_bool(self, value: bool) -> "Writer":
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def put_bytes(self, payload: bytes) -> "Writer":
        self._parts.append(encode_uvarint(len(payload)))
        self._parts.append(payload)
        return self

    def put_fixed(self, payload: bytes, size: int) -> "Writer":
        """Write exactly ``size`` bytes (hashes, signatures, keys)."""
        if len(payload) != size:
            raise CodecError(f"fixed field expected {size} bytes, got {len(payload)}")
        self._parts.append(payload)
        return self

    def put_str(self, text: str) -> "Writer":
        return self.put_bytes(text.encode("utf-8"))

    def put_list(self, items: list, put_item) -> "Writer":
        self.put_uint(len(items))
        for item in items:
            put_item(self, item)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Reader:
    """Sequential field decoder with strict bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def get_uint(self) -> int:
        value, self._pos = decode_uvarint(self._data, self._pos)
        return value

    def get_bool(self) -> bool:
        if self.remaining < 1:
            raise CodecError("truncated bool")
        byte = self._data[self._pos]
        self._pos += 1
        if byte not in (0, 1):
            raise CodecError(f"invalid bool byte {byte:#x}")
        return byte == 1

    def get_bytes(self) -> bytes:
        length, pos = decode_uvarint(self._data, self._pos)
        end = pos + length
        if end > len(self._data):
            raise CodecError("truncated byte field")
        self._pos = end
        return self._data[pos:end]

    def get_fixed(self, size: int) -> bytes:
        end = self._pos + size
        if end > len(self._data):
            raise CodecError(f"truncated fixed field of {size} bytes")
        out = self._data[self._pos:end]
        self._pos = end
        return out

    def get_str(self) -> str:
        raw = self.get_bytes()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8 in string field") from exc

    def get_list(self, get_item) -> list:
        count = self.get_uint()
        # Guard against forged counts that would allocate unboundedly.
        if count > max(self.remaining, 64):
            raise CodecError(f"list count {count} exceeds remaining data")
        return [get_item(self) for _ in range(count)]

    def expect_end(self) -> None:
        if self.remaining:
            raise CodecError(f"{self.remaining} trailing bytes after message")
