"""Wire format: binary codec primitives, core request types, type registry.

The paper exchanges blockchain data in Protobuf; we reproduce the property
that matters for the evaluation — byte-accurate, compact, self-delimiting
message encoding — with a small length-prefixed codec.  Every protocol
message implements ``encode``/``decode`` and knows its exact wire size,
which feeds the network-utilization results.
"""

from repro.wire.codec import Reader, Writer
from repro.wire.messages import Request, SignedRequest
from repro.wire.registry import decode_message, encode_message, register_message_type

__all__ = [
    "Reader",
    "Writer",
    "Request",
    "SignedRequest",
    "decode_message",
    "encode_message",
    "register_message_type",
]
