"""Investigator tooling: decode a recorded chain back into signal timelines.

This is the "lab analysis" consumer the paper assumes downstream of export
(§III-B): given a verified blockchain and the NSDB, reconstruct per-signal
time series, event lists (emergency brakes, ATP interventions, door
cycles), and per-origin statistics for attribution of fabricated data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.bus.nsdb import Nsdb
from repro.bus.reception import decode_cycle_payload
from repro.chain.blockchain import Blockchain


@dataclass(frozen=True)
class SignalSample:
    """One decoded signal observation from the juridical record."""

    bus_cycle: int
    recv_timestamp_us: int
    signal_name: str
    value: object
    valid_checksum: bool
    origin_node: str
    source_link: str
    block_height: int


@dataclass
class Timeline:
    """Decoded record: samples per signal plus bookkeeping."""

    samples: dict[str, list[SignalSample]] = field(default_factory=dict)
    unknown_ports: Counter = field(default_factory=Counter)
    origins: Counter = field(default_factory=Counter)
    invalid_checksums: int = 0
    requests_decoded: int = 0

    def signal(self, name: str) -> list[SignalSample]:
        return self.samples.get(name, [])

    def signal_names(self) -> list[str]:
        return sorted(self.samples)

    def events_where(self, name: str, predicate) -> list[SignalSample]:
        return [s for s in self.signal(name) if predicate(s.value)]

    def active_cycles(self, name: str) -> list[int]:
        """Bus cycles where a boolean signal was asserted."""
        return sorted({s.bus_cycle for s in self.events_where(name, bool)})


def extract_timeline(chain: Blockchain, nsdb: Nsdb) -> Timeline:
    """Decode every stored block of ``chain`` into a :class:`Timeline`.

    Verifies chain integrity first — an investigator never reads an
    unverified record.  Headers-only blocks (emergency pruning) are
    skipped; their absence is visible via the height gaps in samples.
    """
    chain.verify()
    timeline = Timeline()
    for height in range(chain.base_height + 1, chain.height + 1):
        if not chain.body_available(height):
            continue
        for signed in chain.block_at(height).requests:
            timeline.requests_decoded += 1
            timeline.origins[signed.node_id] += 1
            request = signed.request
            for port, raw, valid in decode_cycle_payload(request.payload):
                if not valid:
                    timeline.invalid_checksums += 1
                if not nsdb.has_port(port):
                    timeline.unknown_ports[port] += 1
                    continue
                definition = nsdb.by_port(port)
                try:
                    value = definition.decode_value(raw)
                except Exception:
                    # Corrupted width: keep the raw bytes for the record.
                    value = raw
                timeline.samples.setdefault(definition.name, []).append(SignalSample(
                    bus_cycle=request.bus_cycle,
                    recv_timestamp_us=request.recv_timestamp_us,
                    signal_name=definition.name,
                    value=value,
                    valid_checksum=valid,
                    origin_node=signed.node_id,
                    source_link=request.source_link,
                    block_height=height,
                ))
    for samples in timeline.samples.values():
        samples.sort(key=lambda s: (s.bus_cycle, s.recv_timestamp_us))
    return timeline
