"""Result analysis and report formatting for the benchmark harness."""

from repro.analysis.report import format_table, ratio, format_ratio_row, Sweep

__all__ = ["format_table", "ratio", "format_ratio_row", "Sweep"]
