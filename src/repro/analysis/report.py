"""ASCII tables and sweep bookkeeping for the figure/table benchmarks.

Each benchmark regenerates the rows/series the paper reports; these
helpers keep the output uniform so EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (0 when the denominator is 0)."""
    return numerator / denominator if denominator else 0.0


def format_ratio_row(label: str, baseline: float, zugchain: float, unit: str = "") -> list[str]:
    """One comparison row: baseline, zugchain, and the baseline/ZC factor."""
    return [
        label,
        f"{baseline:.3f}{unit}",
        f"{zugchain:.3f}{unit}",
        f"{ratio(baseline, zugchain):.2f}x",
    ]


@dataclass
class Sweep:
    """Accumulates (x, metrics) points of one experiment series."""

    name: str
    x_label: str
    points: list[tuple[float, dict[str, float]]] = field(default_factory=list)

    def add(self, x: float, **metrics: float) -> None:
        self.points.append((x, dict(metrics)))

    def series(self, metric: str) -> list[tuple[float, float]]:
        return [(x, metrics[metric]) for x, metrics in self.points if metric in metrics]

    def to_table(self, metrics: list[str], fmt: str = "{:.3f}") -> str:
        headers = [self.x_label] + metrics
        rows = []
        for x, values in self.points:
            row = [f"{x:g}"] + [
                fmt.format(values[m]) if m in values else "-" for m in metrics
            ]
            rows.append(row)
        return format_table(headers, rows, title=self.name)
