"""Auditor tooling: prove and verify inclusion of single events.

After export, an investigating authority may need to hand a *single*
juridical event to a third party (a court, another company) without
disclosing the rest of the record.  Blocks commit to their requests via a
Merkle root, so an inclusion proof — the block header chain plus one
Merkle path — suffices: the verifier checks the header chain's hash links
and the Merkle path against the committed payload root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.chain.blockchain import Blockchain
from repro.crypto.merkle import MerkleProof, verify_merkle_proof
from repro.util.errors import ChainError
from repro.wire.messages import SignedRequest


@dataclass(frozen=True)
class InclusionProof:
    """Everything needed to verify one event against a trusted head hash."""

    request: SignedRequest
    block_height: int
    leaf_index: int
    leaf_count: int
    merkle_proof: MerkleProof
    headers: tuple[BlockHeader, ...]  # from the event's block to the head

    @property
    def head_hash(self) -> bytes:
        return self.headers[-1].block_hash


def prove_inclusion(chain: Blockchain, height: int, index: int) -> InclusionProof:
    """Build an inclusion proof for request ``index`` of block ``height``."""
    block = chain.block_at(height)
    if not chain.body_available(height):
        raise ChainError(f"block {height} body was pruned; cannot prove from here")
    if not 0 <= index < len(block.requests):
        raise ChainError(f"request index {index} out of range in block {height}")
    headers = tuple(
        chain.block_at(h).header for h in range(height, chain.height + 1)
    )
    return InclusionProof(
        request=block.requests[index],
        block_height=height,
        leaf_index=index,
        leaf_count=len(block.requests),
        merkle_proof=block.merkle_tree().proof(index),
        headers=headers,
    )


def verify_inclusion(proof: InclusionProof, trusted_head_hash: bytes) -> bool:
    """Check an inclusion proof against a trusted head block hash.

    The trusted hash typically comes from a stable checkpoint certificate
    (2f+1 replica signatures) held by the data centers.
    """
    if not proof.headers:
        return False
    if proof.headers[-1].block_hash != trusted_head_hash:
        return False
    if proof.headers[0].height != proof.block_height:
        return False
    # Header chain links correctly from the event's block to the head.
    for prev, nxt in zip(proof.headers, proof.headers[1:]):
        if nxt.height != prev.height + 1 or nxt.prev_hash != prev.block_hash:
            return False
    # The Merkle path ties the request bytes to the block's payload root.
    if proof.leaf_count != proof.headers[0].request_count:
        return False
    return verify_merkle_proof(
        proof.request.encode(),
        proof.merkle_proof,
        proof.headers[0].payload_root,
        proof.leaf_count,
    )
