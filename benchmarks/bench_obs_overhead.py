"""Tracing overhead: the disabled path must cost (almost) nothing.

Every protocol hot path now carries a ``tracer`` reference; with tracing
off (the default, :data:`~repro.obs.trace.NULL_TRACER`) the added cost per
call site is one attribute read and a skipped branch.  This benchmark pins
that contract two ways:

* micro: a guarded no-op emit vs a recording emit on a tight loop;
* macro: a full Fig. 6-style scenario untraced vs traced — the untraced
  run must stay within a few percent of the traced one's simulation
  throughput, and both must report identical protocol numbers.
"""

from repro.obs import NULL_TRACER, RecordingTracer
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import SMOKE

_CALLS = 100_000


def _guarded_emits(tracer, calls=_CALLS):
    digest = b"\xab" * 32
    t = 0.0
    for _ in range(calls):
        if tracer.enabled:  # the call-site idiom under test
            tracer.emit("bus.rx", t, "node-0", digest=digest.hex(), link=0)
        t += 0.001
    return t


def bench_null_tracer_guard(benchmark):
    benchmark.pedantic(_guarded_emits, args=(NULL_TRACER,),
                       rounds=5, iterations=1)


def bench_recording_tracer_emit(benchmark):
    def traced():
        tracer = RecordingTracer()
        _guarded_emits(tracer)
        return len(tracer)

    count = benchmark.pedantic(traced, rounds=5, iterations=1)
    assert count == _CALLS


def bench_traced_scenario_matches_untraced(benchmark):
    def run(tracer):
        cluster = SimulatedCluster(
            ScenarioConfig(system="zugchain", seed=42), tracer=tracer
        )
        duration = 4.0 if SMOKE else 12.0
        return cluster.run(duration_s=duration, warmup_s=1.0)

    untraced = benchmark.pedantic(lambda: run(None), rounds=1, iterations=1)
    traced = run(RecordingTracer())
    # Tracing observes, never perturbs: identical protocol results.
    assert traced.requests_logged == untraced.requests_logged
    assert traced.mean_latency_s == untraced.mean_latency_s
    assert traced.metrics == untraced.metrics
    assert traced.phases and not untraced.phases
