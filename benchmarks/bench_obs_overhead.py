"""Tracing overhead: the disabled path must cost (almost) nothing.

Every protocol hot path now carries a ``tracer`` reference; with tracing
off (the default, :data:`~repro.obs.trace.NULL_TRACER`) the added cost per
call site is one attribute read and a skipped branch.  This benchmark pins
that contract two ways:

* micro: a guarded no-op emit vs a recording emit on a tight loop;
* micro: the per-emission causal stamp (``CausalClock.stamp()`` runs on
  every ``BaseEnv._emit``, traced or not) against its regression budget;
* macro: a full Fig. 6-style scenario untraced vs traced — the untraced
  run must stay within a few percent of the traced one's simulation
  throughput, and both must report identical protocol numbers.

The measurement loops live in :mod:`repro.obs.overhead` (shared with
``repro bench --suite obs``); this file drives them under
pytest-benchmark.
"""

from repro.obs import NULL_TRACER, RecordingTracer
from repro.obs.overhead import STAMP_BUDGET_NS, measure_obs_overhead
from repro.runtime.wallclock import wall_timer
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import SMOKE

_CALLS = 100_000


def _guarded_emits(tracer, calls=_CALLS):
    digest = b"\xab" * 32
    t = 0.0
    for _ in range(calls):
        if tracer.enabled:  # the call-site idiom under test
            tracer.emit("bus.rx", t, "node-0", digest=digest.hex(), link=0)
        t += 0.001
    return t


def bench_null_tracer_guard(benchmark):
    benchmark.pedantic(_guarded_emits, args=(NULL_TRACER,),
                       rounds=5, iterations=1)


def bench_recording_tracer_emit(benchmark):
    def traced():
        tracer = RecordingTracer()
        _guarded_emits(tracer)
        return len(tracer)

    count = benchmark.pedantic(traced, rounds=5, iterations=1)
    assert count == _CALLS


def bench_causal_stamp_on_disabled_hot_path(benchmark):
    """The always-on stamp must stay within its per-emission budget.

    ``CausalClock.stamp()`` runs once per ``_emit`` even with tracing
    disabled (the clock ticks identically so enabling a tracer never
    perturbs the protocol).  The budget is loose — it catches O(n) work
    sneaking into the funnel, not nanosecond drift — and the exact
    numbers land in the BENCH artifact via ``repro bench --suite obs``.
    """
    result = benchmark.pedantic(
        lambda: measure_obs_overhead(wall_timer(), calls=_CALLS),
        rounds=3, iterations=1,
    )
    assert result["causal_stamp_ns"] < STAMP_BUDGET_NS
    # The per-site guard stays an order of magnitude under the stamp.
    assert result["null_guard_ns"] < result["causal_stamp_ns"]


def bench_traced_scenario_matches_untraced(benchmark):
    def run(tracer):
        cluster = SimulatedCluster(
            ScenarioConfig(system="zugchain", seed=42), tracer=tracer
        )
        duration = 4.0 if SMOKE else 12.0
        return cluster.run(duration_s=duration, warmup_s=1.0)

    untraced = benchmark.pedantic(lambda: run(None), rounds=1, iterations=1)
    traced = run(RecordingTracer())
    # Tracing observes, never perturbs: identical protocol results.
    assert traced.requests_logged == untraced.requests_logged
    assert traced.mean_latency_s == untraced.mean_latency_s
    assert traced.metrics == untraced.metrics
    assert traced.phases and not untraced.phases
