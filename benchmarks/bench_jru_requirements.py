"""§V-B "Comparison to JRU Requirements": the headline compliance check.

Paper: data must be stored within 500 ms of arrival at 10 events/s.  At a
64 ms bus cycle ZugChain processes 15.6 events/s with ~14 ms ordering
latency plus 5.03 ms to persist an 8 kB-payload block — far below the
threshold — while using at most 15 % of the shared CPU (R1, R2).
"""

from repro.jru import check_requirements
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.sim.resources import CostModel

from repro.sweep import DURATION_S, SMOKE, WARMUP_S


def bench_jru_requirements(benchmark):
    def run():
        cluster = SimulatedCluster(ScenarioConfig(
            system="zugchain",
            cycle_time_s=0.064,
            payload_bytes=8192,   # worst-case payload for the persist path
        ))
        return cluster.run(duration_s=DURATION_S, warmup_s=WARMUP_S)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = check_requirements(result, persist_payload_bytes=8192)

    print()
    print("JRU requirement check (64 ms cycle, 8 kB payloads):")
    for line in report.lines():
        print(" ", line)
    model = CostModel()
    persist = model.disk_write_cost(8192 * 10)
    print(f"\n  ordering latency {result.mean_latency_s * 1000:.2f} ms "
          f"(paper ~14 ms), block persist {persist * 1000:.2f} ms "
          f"(paper 5.03 ms), events {1 / result.cycle_time_s:.1f}/s "
          f"(paper 15.6/s)")

    # -- shape assertions --------------------------------------------------------
    if SMOKE:  # short runs prove the check executes; the numbers aren't settled
        return
    assert report.all_passed, "\n".join(report.lines())
    assert result.mean_latency_s < 0.030
    assert result.mean_latency_s + persist < 0.5
    assert result.cpu_utilization <= 0.15
