"""Fig. 6 (left): network utilization and latency vs bus cycle time.

Paper: for bus cycles 32-256 ms at 1 kB payloads, the baseline's network
utilization is ~4x ZugChain's (every request ordered four times) and its
latency 1.1-4.9x — except at the MVB-minimum 32 ms cycle, where the
baseline cannot keep up and latency explodes (up to 828x in the 5-minute
runs; the factor grows with run length since the backlog is unbounded).
"""

from repro.analysis import format_table, ratio

from repro.sweep import SMOKE, cycle_sweep


def bench_fig6_cycles(benchmark):
    zugchain = benchmark.pedantic(lambda: cycle_sweep("zugchain"),
                                  rounds=1, iterations=1)
    baseline = cycle_sweep("baseline")

    rows = []
    for zc, base in zip(zugchain, baseline):
        rows.append([
            f"{zc.cycle_time_s * 1000:.0f} ms",
            f"{zc.network_utilization * 100:.3f} %",
            f"{base.network_utilization * 100:.3f} %",
            f"{ratio(base.network_utilization, zc.network_utilization):.1f}x",
            f"{zc.mean_latency_s * 1000:.2f} ms",
            f"{base.mean_latency_s * 1000:.2f} ms",
            f"{ratio(base.mean_latency_s, zc.mean_latency_s):.1f}x",
        ])
    print()
    print(format_table(
        ["bus cycle", "ZC net", "base net", "net ratio",
         "ZC latency", "base latency", "lat ratio"],
        rows, title="Fig. 6 (left): network utilization and latency vs bus cycle",
    ))

    # -- shape assertions ------------------------------------------------------
    if SMOKE:  # short runs prove the sweep executes; the numbers aren't settled
        return
    for zc, base in zip(zugchain, baseline):
        # ZugChain latency is flat across cycles and well under the deadline.
        assert zc.mean_latency_s < 0.020
        assert zc.view_changes == 0
        # Baseline always needs substantially more bandwidth.
        assert ratio(base.network_utilization, zc.network_utilization) > 2.0
    # At healthy cycles the ratio is the ~4x duplication factor (the paper
    # reports 4x; replies and retransmissions push ours slightly higher).
    for zc, base in zip(zugchain[1:], baseline[1:]):
        assert 3.0 < ratio(base.network_utilization, zc.network_utilization) < 7.0
        assert base.mean_latency_s < 0.100  # baseline survives 64 ms and up
    # ... but collapses at the 32 ms minimum: latency explodes and requests
    # are shed (the paper reports up to 828x in its 5-minute runs).
    collapse = ratio(baseline[0].mean_latency_s, zugchain[0].mean_latency_s)
    assert collapse > 15.0, f"expected baseline collapse at 32 ms, got {collapse:.1f}x"
