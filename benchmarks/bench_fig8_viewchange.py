"""Fig. 8: request latency during a view change.

Paper setup: the primary becomes faulty at relative time 0; ZugChain's
soft+hard timeouts (250 ms + 250 ms) total the baseline's 500 ms view
change timeout.  The view change takes 530 ms (ZugChain) / 507 ms
(baseline); afterwards ZugChain's latency returns to its 14 ms level
within 210 ms while the baseline needs 824 ms to get back to 25 ms —
ZugChain stabilizes faster because it has fewer messages to process.
"""

from repro.analysis import format_table
from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import SMOKE

# Smoke mode still leaves ~3 s of steady state before the crash and ~8 s
# after — enough for one complete view change plus recovery.
CRASH_AT_S = 6.0 if SMOKE else 15.0
RUN_S = 14.0 if SMOKE else 35.0


def _viewchange_timeline(system: str) -> dict:
    cluster = SimulatedCluster(ScenarioConfig(
        system=system,
        cycle_time_s=0.064,
        payload_bytes=1024,
        byzantine={"node-0": ByzantineSpec(crash_at_s=CRASH_AT_S)},
    ))
    cluster.run(duration_s=RUN_S, warmup_s=3.0)
    # Observe from node-1 (the new primary after the view change).
    recorder = cluster.nodes["node-1"].latency
    timeline = recorder.timeline()

    before = [lat for t, lat in timeline if t < CRASH_AT_S]
    after = [(t, lat) for t, lat in timeline if t >= CRASH_AT_S]
    steady = sum(before[-50:]) / len(before[-50:])

    # The stall: requests in flight at the crash still commit (the remaining
    # 2f+1 replicas complete them), then ordering stops until the view change
    # finishes — measured as the largest inter-decide gap after the crash.
    decide_times = [CRASH_AT_S] + [t for t, _ in after[:200]]
    gap_s = max(
        (b - a for a, b in zip(decide_times, decide_times[1:])), default=float("inf")
    )
    stall_end = max(
        (b for a, b in zip(decide_times, decide_times[1:]) if b - a == gap_s),
        default=CRASH_AT_S,
    )
    # Recovery: first time after the stall where latency is back near steady.
    recovered_at = None
    for t, lat in after:
        if t >= stall_end and lat <= steady * 1.5:
            recovered_at = t
            break
    recovery_s = (recovered_at - stall_end) if recovered_at else float("inf")
    spike = max((lat for _, lat in after[:80]), default=0.0)
    view_changes = cluster.nodes["node-1"].replica.stats.view_changes_completed
    return {
        "steady_ms": steady * 1000,
        "gap_ms": gap_s * 1000,
        "recovery_ms": recovery_s * 1000,
        "spike_ms": spike * 1000,
        "view_changes": view_changes,
        "decided_after": len(after),
    }


def bench_fig8_viewchange(benchmark):
    zc = benchmark.pedantic(lambda: _viewchange_timeline("zugchain"),
                            rounds=1, iterations=1)
    base = _viewchange_timeline("baseline")

    rows = [
        ["steady latency", f"{zc['steady_ms']:.1f} ms", f"{base['steady_ms']:.1f} ms"],
        ["ordering stall (view change)", f"{zc['gap_ms']:.0f} ms", f"{base['gap_ms']:.0f} ms"],
        ["peak latency during change", f"{zc['spike_ms']:.0f} ms", f"{base['spike_ms']:.0f} ms"],
        ["recovery to steady level", f"{zc['recovery_ms']:.0f} ms", f"{base['recovery_ms']:.0f} ms"],
        ["view changes completed", str(zc["view_changes"]), str(base["view_changes"])],
    ]
    print()
    print(format_table(["metric", "ZugChain", "baseline"], rows,
                       title="Fig. 8: latency around a primary failure at t=0"))

    # -- shape assertions --------------------------------------------------------
    if SMOKE:  # short runs prove the timeline executes; the numbers aren't settled
        return
    # Both systems detect the fault and complete exactly one view change.
    assert zc["view_changes"] >= 1 and base["view_changes"] >= 1
    # Total detection + view change is in the ~500-900 ms band set by the
    # 250+250 ms (ZC) and 500 ms (baseline) timeouts (paper: 530/507 ms).
    assert 0.4e3 < zc["gap_ms"] < 1.2e3
    assert 0.4e3 < base["gap_ms"] < 1.6e3
    # ZugChain stabilizes faster than the baseline (fewer messages to drain).
    assert zc["recovery_ms"] <= base["recovery_ms"]
    # Both systems keep logging after the change.
    assert zc["decided_after"] > 100 and base["decided_after"] > 100
