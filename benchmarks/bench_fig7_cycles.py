"""Fig. 7 (left): CPU and memory usage vs bus cycle time.

Paper: ZugChain's CPU usage is 25-31 % of the baseline's across cycles and
never exceeds 15 % of the four cores; the baseline needs 1.7-1.8x the
memory (up to 6.3x at the overloaded 32 ms cycle, where its queues grow).
"""

from repro.analysis import format_table, ratio

from repro.sweep import SMOKE, cycle_sweep


def bench_fig7_cycles(benchmark):
    zugchain = benchmark.pedantic(lambda: cycle_sweep("zugchain"),
                                  rounds=1, iterations=1)
    baseline = cycle_sweep("baseline")

    rows = []
    for zc, base in zip(zugchain, baseline):
        rows.append([
            f"{zc.cycle_time_s * 1000:.0f} ms",
            f"{zc.cpu_utilization * 100:.1f} %",
            f"{base.cpu_utilization * 100:.1f} %",
            f"{ratio(zc.cpu_utilization, base.cpu_utilization) * 100:.0f} %",
            f"{zc.memory_mean_bytes / 1e6:.2f} MB",
            f"{base.memory_mean_bytes / 1e6:.2f} MB",
            f"{ratio(base.memory_mean_bytes, zc.memory_mean_bytes):.1f}x",
        ])
    print()
    print(format_table(
        ["bus cycle", "ZC cpu", "base cpu", "ZC/base cpu",
         "ZC mem", "base mem", "mem ratio"],
        rows, title="Fig. 7 (left): CPU and memory vs bus cycle (CPU: % of all 4 cores)",
    ))

    # -- shape assertions -------------------------------------------------------
    if SMOKE:  # short runs prove the sweep executes; the numbers aren't settled
        return
    for zc, base in zip(zugchain, baseline):
        # ZugChain within the 15 % shared-device budget at every cycle.
        assert zc.cpu_utilization < 0.15
        # ZugChain uses a fraction of the baseline's CPU (paper: 25-31 %).
        assert ratio(zc.cpu_utilization, base.cpu_utilization) < 0.45
        # Baseline needs more memory everywhere.
        assert base.memory_mean_bytes > 1.2 * zc.memory_mean_bytes
    # The overloaded 32 ms baseline's memory blows up well past the healthy
    # ratio (the paper reports 6.3x; ours is bounded by the load-shedding
    # client buffer, so the blow-up is visible but smaller).
    overload_ratio = ratio(baseline[0].memory_peak_bytes, zugchain[0].memory_peak_bytes)
    healthy_ratio = ratio(baseline[1].memory_peak_bytes, zugchain[1].memory_peak_bytes)
    assert overload_ratio > 1.3 * healthy_ratio, (
        f"expected memory blow-up at 32 ms: {overload_ratio:.1f}x vs healthy {healthy_ratio:.1f}x"
    )
