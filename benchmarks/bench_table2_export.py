"""Table II: latency of read, delete, and verify during export.

Paper: exporting 500-16 000 blocks (5 minutes to 3 hours of operation at a
64 ms cycle) to an AWS VM over ~8.5 Mbit/s LTE.  The majority of the
latency (80-96 %) is waiting for the 2f+1 replies — especially the full
blocks from one replica; verification is 0.2-0.3 % of the total, deletion
3-19 %.  Exporting 3 hours of data takes on the order of minutes, so
continuous export or export during stops is feasible.
"""

from repro.analysis import format_table
from repro.export.scenario import ExportScenario, ExportScenarioConfig

from repro.sweep import SMOKE

# Smoke keeps the representative 2 000-block point so the benchmark's
# timed round stays in the sweep.
BLOCK_COUNTS = (500, 1_000, 2_000) if SMOKE else (500, 1_000, 2_000, 4_000, 8_000, 16_000)


def _export_point(n_blocks: int):
    scenario = ExportScenario(ExportScenarioConfig(n_blocks=n_blocks))
    return scenario.run_export()


def bench_table2_export(benchmark):
    results = {}
    # Time the representative 2 000-block round through pytest-benchmark;
    # run the full sweep around it.
    for count in BLOCK_COUNTS:
        if count == 2_000:
            results[count] = benchmark.pedantic(
                lambda: _export_point(2_000), rounds=1, iterations=1
            )
        else:
            results[count] = _export_point(count)

    rows = []
    for count in BLOCK_COUNTS:
        r = results[count]
        rows.append([
            f"{count}",
            f"{r.read_s:.2f} s",
            f"{r.delete_s:.2f} s",
            f"{r.verify_s:.3f} s",
            f"{r.total_s:.2f} s",
            f"{r.read_s / r.total_s * 100:.0f} %",
        ])
    print()
    print(format_table(
        ["#blocks", "read", "delete", "verify", "total", "read share"],
        rows, title="Table II: export latency over ~8.5 Mbit/s LTE",
    ))

    # -- shape assertions --------------------------------------------------------
    for count in BLOCK_COUNTS:
        r = results[count]
        assert r.complete
        assert r.blocks_exported == count
        if SMOKE:
            continue
        # Reply waiting dominates (paper: 80-96 %).
        assert r.read_s / r.total_s > 0.6
        # Verification is a tiny fraction (paper: 0.2-0.3 %).
        assert r.verify_s / r.total_s < 0.05
    if SMOKE:  # completeness above is checked; timing shape needs the full sweep
        return
    # Latency grows with the number of blocks (bandwidth-bound).
    totals = [results[c].total_s for c in BLOCK_COUNTS]
    assert totals == sorted(totals)
    # Even the 3-hour export completes within minutes (feasible at stops).
    assert results[16_000].total_s < 300.0
