"""Fig. 6 (right): network utilization and latency vs payload size.

Paper: for payloads 32 B - 8 kB at the 64 ms cycle, ZugChain's latency
rises by 37 % across the sweep while the baseline's stays 1.6-2.5x higher,
and the baseline's network utilization stays ~4x.
"""

from repro.analysis import format_table, ratio

from repro.sweep import PAYLOAD_BYTES, SMOKE, payload_sweep


def bench_fig6_payloads(benchmark):
    zugchain = benchmark.pedantic(lambda: payload_sweep("zugchain"),
                                  rounds=1, iterations=1)
    baseline = payload_sweep("baseline")

    rows = []
    for zc, base in zip(zugchain, baseline):
        rows.append([
            f"{zc.payload_bytes} B",
            f"{zc.network_utilization * 100:.3f} %",
            f"{base.network_utilization * 100:.3f} %",
            f"{ratio(base.network_utilization, zc.network_utilization):.1f}x",
            f"{zc.mean_latency_s * 1000:.2f} ms",
            f"{base.mean_latency_s * 1000:.2f} ms",
            f"{ratio(base.mean_latency_s, zc.mean_latency_s):.1f}x",
        ])
    print()
    print(format_table(
        ["payload", "ZC net", "base net", "net ratio",
         "ZC latency", "base latency", "lat ratio"],
        rows, title="Fig. 6 (right): network utilization and latency vs payload size",
    ))

    # -- shape assertions -----------------------------------------------------
    if SMOKE:  # short runs prove the sweep executes; the numbers aren't settled
        return
    # ZugChain latency grows moderately with payload (paper: +37 % over the
    # sweep), never explodes.
    growth = zugchain[-1].mean_latency_s / zugchain[0].mean_latency_s
    assert 1.02 < growth < 2.0, f"ZC latency growth {growth:.2f} out of range"
    # Baseline latency stays a small multiple of ZugChain's at every size.
    for zc, base in zip(zugchain, baseline):
        factor = ratio(base.mean_latency_s, zc.mean_latency_s)
        assert 1.3 < factor < 8.0, f"baseline factor {factor:.1f} at {zc.payload_bytes} B"
        assert 3.0 < ratio(base.network_utilization, zc.network_utilization) < 7.0
    # Network utilization grows with payload for both systems.
    assert zugchain[-1].network_utilization > zugchain[0].network_utilization
    assert baseline[-1].network_utilization > baseline[0].network_utilization
