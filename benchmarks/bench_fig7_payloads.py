"""Fig. 7 (right): CPU and memory usage vs payload size.

Paper: ZugChain's CPU is 24-26 % of the baseline's across payload sizes,
and the baseline's memory 1.6-1.7x ZugChain's.
"""

from repro.analysis import format_table, ratio

from repro.sweep import SMOKE, payload_sweep


def bench_fig7_payloads(benchmark):
    zugchain = benchmark.pedantic(lambda: payload_sweep("zugchain"),
                                  rounds=1, iterations=1)
    baseline = payload_sweep("baseline")

    rows = []
    for zc, base in zip(zugchain, baseline):
        rows.append([
            f"{zc.payload_bytes} B",
            f"{zc.cpu_utilization * 100:.1f} %",
            f"{base.cpu_utilization * 100:.1f} %",
            f"{ratio(zc.cpu_utilization, base.cpu_utilization) * 100:.0f} %",
            f"{zc.memory_mean_bytes / 1e6:.2f} MB",
            f"{base.memory_mean_bytes / 1e6:.2f} MB",
            f"{ratio(base.memory_mean_bytes, zc.memory_mean_bytes):.1f}x",
        ])
    print()
    print(format_table(
        ["payload", "ZC cpu", "base cpu", "ZC/base cpu",
         "ZC mem", "base mem", "mem ratio"],
        rows, title="Fig. 7 (right): CPU and memory vs payload size",
    ))

    # -- shape assertions -------------------------------------------------------
    if SMOKE:  # short runs prove the sweep executes; the numbers aren't settled
        return
    for zc, base in zip(zugchain, baseline):
        assert zc.cpu_utilization < 0.15
        assert ratio(zc.cpu_utilization, base.cpu_utilization) < 0.45
        # Paper: 1.6-1.7x; at the smallest payload our fixed process
        # overhead dominates and compresses the ratio.
        assert base.memory_mean_bytes > 1.1 * zc.memory_mean_bytes
    # CPU grows with payload for both systems (hashing + serialization).
    assert zugchain[-1].cpu_utilization > zugchain[0].cpu_utilization
    assert baseline[-1].cpu_utilization > baseline[0].cpu_utilization
