"""Shared sweep runner for the figure/table benchmarks.

Results are memoized per (system, cycle, payload, ...) so benchmarks that
report different metrics of the same runs (Fig. 6 and Fig. 7 share their
sweeps) do not re-simulate.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.obs import RecordingTracer
from repro.scenarios import ScenarioConfig, ScenarioResult, SimulatedCluster

#: The paper's sweep axes (§V-B).
BUS_CYCLES_S = (0.032, 0.064, 0.128, 0.256)
PAYLOAD_BYTES = (32, 1024, 4096, 8192)
DEFAULT_CYCLE_S = 0.064
DEFAULT_PAYLOAD = 1024

#: CI smoke mode (``ZUGCHAIN_BENCH_SMOKE=1``): runs every benchmark at a
#: sharply reduced simulated duration so the whole figure suite executes in
#: minutes.  Absolute numbers are not meaningful at this duration, so the
#: benchmarks skip their quantitative shape assertions and only prove the
#: sweeps still run end to end.
SMOKE = os.environ.get("ZUGCHAIN_BENCH_SMOKE", "") not in ("", "0")

#: Traced mode (``ZUGCHAIN_BENCH_TRACE=1``): every sweep point runs with a
#: :class:`~repro.obs.trace.RecordingTracer` attached, so the figure
#: benchmarks double as an overhead regression check — tracing must not
#: change any reported number (the determinism suite asserts equality;
#: here the shape assertions simply keep holding).
TRACE = os.environ.get("ZUGCHAIN_BENCH_TRACE", "") not in ("", "0")

#: Simulated duration per point.  The paper runs 5 minutes; 24 s preserves
#: every qualitative result (steady state is reached within seconds) while
#: keeping the full suite's wall time reasonable.
DURATION_S = 6.0 if SMOKE else 24.0
WARMUP_S = 1.5 if SMOKE else 3.0


@lru_cache(maxsize=None)
def sweep_point(
    system: str,
    cycle_time_s: float,
    payload_bytes: int,
    duration_s: float = DURATION_S,
    seed: int = 42,
) -> ScenarioResult:
    """Run (memoized) one measurement point."""
    cluster = SimulatedCluster(
        ScenarioConfig(
            system=system,
            cycle_time_s=cycle_time_s,
            payload_bytes=payload_bytes,
            seed=seed,
        ),
        tracer=RecordingTracer() if TRACE else None,
    )
    return cluster.run(duration_s=duration_s, warmup_s=WARMUP_S)


def cycle_sweep(system: str) -> list[ScenarioResult]:
    """Fig. 6/7 left: bus cycles 32-256 ms at 1 kB payloads.

    The overloaded baseline at 32 ms gets a longer run so enough requests
    complete (through the growing backlog) to yield latency samples.
    """
    out = []
    for cycle in BUS_CYCLES_S:
        duration = DURATION_S
        if system == "baseline" and cycle <= 0.032 and not SMOKE:
            duration = 40.0
        out.append(sweep_point(system, cycle, DEFAULT_PAYLOAD, duration))
    return out


def payload_sweep(system: str) -> list[ScenarioResult]:
    """Fig. 6/7 right: payloads 32 B - 8 kB at the 64 ms cycle."""
    return [sweep_point(system, DEFAULT_CYCLE_S, payload) for payload in PAYLOAD_BYTES]
