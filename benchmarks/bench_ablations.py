"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these quantify what each mechanism of the
communication layer buys:

* **filtering off** — every node's copy of the bus data gets ordered,
  approximating the baseline's duplication from within the ZugChain stack;
* **preprepare-cancel optimization off** — soft timers are no longer
  cancelled early by observed preprepares (§III-C optimization); harmless
  in the fault-free case, it pays off under a slow primary;
* **tight rate limit under fabrication** — the open-request cap is what
  bounds a fabricating node's damage.
"""

from repro.analysis import format_table
from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import SMOKE, WARMUP_S

_DURATION_S = 6.0 if SMOKE else 20.0


def _run(**kwargs):
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", **kwargs))
    result = cluster.run(duration_s=_DURATION_S, warmup_s=WARMUP_S)
    return cluster, result


def bench_ablation_filtering(benchmark):
    _, on = benchmark.pedantic(lambda: _run(), rounds=1, iterations=1)
    cluster_off, off = _run(filtering_enabled=False)

    rows = [
        ["filtering on", f"{on.mean_latency_s * 1000:.1f} ms",
         f"{on.network_utilization * 100:.2f} %",
         f"{on.cpu_utilization * 100:.1f} %", f"{on.requests_logged}"],
        ["filtering off", f"{off.mean_latency_s * 1000:.1f} ms",
         f"{off.network_utilization * 100:.2f} %",
         f"{off.cpu_utilization * 100:.1f} %", f"{off.requests_logged}"],
    ]
    print()
    print(format_table(["config", "latency", "net", "cpu", "logged"], rows,
                       title="Ablation: content filtering (the core of Alg. 1)"))

    if SMOKE:  # short runs prove the ablation executes; the numbers aren't settled
        return
    # Without filtering, duplicate copies of the same payload get ordered:
    # network and CPU rise toward the baseline's profile.
    assert off.network_utilization > 1.5 * on.network_utilization
    assert off.cpu_utilization > 1.5 * on.cpu_utilization


def bench_ablation_preprepare_cancel(benchmark):
    delay = {"node-0": ByzantineSpec(preprepare_delay_s=0.245)}
    _, optimized = benchmark.pedantic(lambda: _run(byzantine=delay),
                                      rounds=1, iterations=1)
    cluster_off, unoptimized = _run(byzantine=delay, preprepare_cancels_soft=False)

    soft_off = sum(cluster_off.nodes[i].layer.stats.soft_timeouts
                   for i in cluster_off.ids)
    rows = [
        ["optimization on", f"{optimized.network_utilization * 100:.3f} %",
         f"{optimized.mean_latency_s * 1000:.1f} ms"],
        ["optimization off", f"{unoptimized.network_utilization * 100:.3f} %",
         f"{unoptimized.mean_latency_s * 1000:.1f} ms"],
    ]
    print()
    print(format_table(["config", "net", "latency"], rows,
                       title="Ablation: preprepare cancels soft timeout "
                             "(primary delaying 245 ms)"))
    print(f"  soft timeouts without the optimization: {soft_off}")

    if SMOKE:  # short runs prove the ablation executes; the numbers aren't settled
        return
    # Without the optimization the soft timers fire and broadcast.
    assert soft_off > 0
    assert unoptimized.network_utilization >= optimized.network_utilization
    # Both stay live: no view change, everything logged.
    assert optimized.view_changes == 0 and unoptimized.view_changes == 0


def bench_ablation_rate_limit(benchmark):
    fabricate = {"node-3": ByzantineSpec(fabricate_per_cycle=1.0)}
    _, limited = benchmark.pedantic(
        lambda: _run(byzantine=fabricate, max_open_per_node=2),
        rounds=1, iterations=1,
    )
    _, generous = _run(byzantine=fabricate, max_open_per_node=512)

    rows = [
        ["cap = 2", f"{limited.mean_latency_s * 1000:.1f} ms",
         f"{limited.cpu_utilization * 100:.1f} %"],
        ["cap = 512", f"{generous.mean_latency_s * 1000:.1f} ms",
         f"{generous.cpu_utilization * 100:.1f} %"],
    ]
    print()
    print(format_table(["open-request cap", "latency", "cpu"], rows,
                       title="Ablation: rate limiting under 100 % fabrication"))

    if SMOKE:  # short runs prove the ablation executes; the numbers aren't settled
        return
    # Both configurations survive this attack level; the cap's job is to
    # bound the worst case, so the limited run must never do worse.
    assert limited.mean_latency_s <= generous.mean_latency_s * 1.05
    assert limited.max_latency_s < 0.5
