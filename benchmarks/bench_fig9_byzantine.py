"""Fig. 9: effects of Byzantine behaviour on the communication layer.

Paper: a faulty backup fabricates a request for 25/75/100 % of bus cycles,
raising CPU by 20/68/92 %, memory by 0.7/1.6/294 %, and latency by
22/60/277 % over normal operation — but rate limiting on open requests
keeps the system within the JRU's performance bounds.  A faulty primary
delaying preprepares by 250 ms stalls ordering until soft timeouts fire
and other nodes forward the request; latency rises with the delay while
network utilization drops.
"""

from repro.analysis import format_table
from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import DURATION_S, SMOKE, WARMUP_S

FABRICATION_RATES = (0.0, 0.25, 0.75, 1.0)


def _run(byzantine=None, cycle_time_s=0.064):
    cluster = SimulatedCluster(ScenarioConfig(
        system="zugchain",
        cycle_time_s=cycle_time_s,
        payload_bytes=1024,
        byzantine=byzantine or {},
    ))
    result = cluster.run(duration_s=DURATION_S, warmup_s=WARMUP_S)
    return cluster, result


def bench_fig9_byzantine(benchmark):
    runs = {}
    for rate in FABRICATION_RATES:
        byz = {"node-3": ByzantineSpec(fabricate_per_cycle=rate)} if rate else None
        if rate == 1.0:
            runs[rate] = benchmark.pedantic(lambda: _run(byz), rounds=1, iterations=1)
        else:
            runs[rate] = _run(byz)
    _, clean = runs[0.0]

    rows = []
    for rate in FABRICATION_RATES:
        _, r = runs[rate]
        rows.append([
            f"{rate * 100:.0f} %",
            f"{r.mean_latency_s * 1000:.1f} ms",
            f"{(r.mean_latency_s / clean.mean_latency_s - 1) * 100:+.0f} %",
            f"{r.cpu_utilization * 100:.1f} %",
            f"{(r.cpu_utilization / clean.cpu_utilization - 1) * 100:+.0f} %",
            f"{r.memory_mean_bytes / 1e6:.2f} MB",
            f"{(r.memory_mean_bytes / clean.memory_mean_bytes - 1) * 100:+.1f} %",
        ])
    print()
    print(format_table(
        ["fabrication", "latency", "Δlat", "cpu", "Δcpu", "memory", "Δmem"],
        rows, title="Fig. 9 (a): faulty backup fabricating requests",
    ))

    # Faulty primary delaying preprepares past the soft timeout.
    _, delayed = _run({"node-0": ByzantineSpec(preprepare_delay_s=0.260)})
    rows = [[
        "260 ms delay",
        f"{delayed.mean_latency_s * 1000:.1f} ms",
        f"{(delayed.mean_latency_s / clean.mean_latency_s - 1) * 100:+.0f} %",
        f"{delayed.network_utilization * 100:.3f} %",
        f"{delayed.view_changes}",
    ]]
    print()
    print(format_table(
        ["attack", "latency", "Δlat", "net", "view changes"],
        rows, title="Fig. 9 (b): faulty primary delaying preprepares",
    ))

    # -- shape assertions ---------------------------------------------------------
    if SMOKE:  # short runs prove the sweep executes; the numbers aren't settled
        return
    lat = [runs[r][1].mean_latency_s for r in FABRICATION_RATES]
    cpu = [runs[r][1].cpu_utilization for r in FABRICATION_RATES]
    # Monotone degradation with the fabrication rate.
    assert lat == sorted(lat)
    assert cpu == sorted(cpu)
    # Even at 100 % fabrication the system stays within the JRU bound.
    assert runs[1.0][1].max_latency_s < 0.5
    assert runs[1.0][1].view_changes == 0
    # The delaying primary raises latency by roughly its delay without
    # triggering a view change (soft timeout < delay < hard timeout path).
    assert delayed.mean_latency_s > 5 * clean.mean_latency_s
    assert delayed.view_changes == 0
