"""Backend comparison: PBFT vs LinearBFT under the ZugChain layer.

Not a paper figure — it substantiates the paper's §IV claim that ZugChain
"can support other primary-based BFT protocols as well".  The linear
backend (SBFT/HotStuff-style vote collection through the primary) trades
PBFT's all-to-all prepare/commit rounds for O(n) messages: fewer
signature verifications per request and lower network utilization.
"""

from repro.analysis import format_table, ratio
from repro.scenarios import ScenarioConfig, SimulatedCluster

from repro.sweep import DURATION_S, SMOKE, WARMUP_S


def _run(backend: str):
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", bft_backend=backend))
    result = cluster.run(duration_s=DURATION_S, warmup_s=WARMUP_S)
    return cluster, result


def bench_backends(benchmark):
    _, pbft = benchmark.pedantic(lambda: _run("pbft"), rounds=1, iterations=1)
    _, linear = _run("linear")

    rows = []
    for label, r in (("PBFT", pbft), ("LinearBFT", linear)):
        rows.append([
            label,
            f"{r.mean_latency_s * 1000:.2f} ms",
            f"{r.network_utilization * 100:.3f} %",
            f"{r.cpu_utilization * 100:.1f} %",
            f"{r.requests_logged}",
            f"{r.view_changes}",
        ])
    print()
    print(format_table(["backend", "latency", "net", "cpu", "logged", "view changes"],
                       rows, title="ZugChain layer over two BFT backends (64 ms, 1 kB)"))

    if SMOKE:  # short runs prove both backends execute; the numbers aren't settled
        return
    # Both backends complete the workload without view changes.
    assert pbft.view_changes == 0 and linear.view_changes == 0
    assert linear.requests_logged >= linear.requests_expected - 1
    assert pbft.requests_logged >= pbft.requests_expected - 1
    # Linear communication: less network and CPU per ordered request.
    assert linear.network_utilization < pbft.network_utilization
    assert linear.cpu_utilization < pbft.cpu_utilization
