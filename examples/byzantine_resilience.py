#!/usr/bin/env python3
"""Byzantine resilience walkthrough (the Fig. 9 attacks, narrated).

Runs three deployments side by side:

1. a clean one;
2. one where a faulty backup fabricates a request every bus cycle —
   data that never appeared on the bus, injected to bloat the log and
   degrade performance (bounded by the per-node open-request limit);
3. one where a faulty *primary* delays every preprepare by 260 ms — past
   the soft timeout, so backups broadcast and forward, but well under the
   point where the hard timeout would depose it.

Run:  python examples/byzantine_resilience.py
"""

from repro.analysis import format_table
from repro.faults import ByzantineSpec
from repro.scenarios import ScenarioConfig, SimulatedCluster


def run(label: str, **kwargs):
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", **kwargs))
    result = cluster.run(duration_s=30.0, warmup_s=3.0)
    return label, cluster, result


def main() -> None:
    print("Running three 30 s deployments (clean / fabricating backup / "
          "delaying primary)...\n")
    runs = [
        run("clean"),
        run("fabricating backup",
            byzantine={"node-3": ByzantineSpec(fabricate_per_cycle=1.0)}),
        run("delaying primary",
            byzantine={"node-0": ByzantineSpec(preprepare_delay_s=0.260)}),
    ]

    rows = []
    for label, cluster, result in runs:
        rows.append([
            label,
            f"{result.mean_latency_s * 1000:.1f} ms",
            f"{result.cpu_utilization * 100:.1f} %",
            f"{result.network_utilization * 100:.2f} %",
            f"{result.requests_logged}",
            f"{result.view_changes}",
        ])
    print(format_table(
        ["scenario", "latency", "cpu", "net", "logged", "view changes"], rows,
        title="Effect of Byzantine behaviour (cf. Fig. 9)",
    ))

    _, fab_cluster, fab_result = runs[1]
    fabricated = fab_cluster.nodes["node-3"].fabricated
    limited = fab_cluster.nodes["node-0"].layer.stats.broadcasts_rate_limited
    print(f"\nfabricating backup injected {fabricated} requests; "
          f"the primary rate-limited {limited} of its broadcasts "
          f"(open-request cap, §III-C fault case iii)")
    print("every fabricated entry in the log carries node-3's signature — "
          "post-operational analysis attributes the garbage to its origin")

    _, delay_cluster, delay_result = runs[2]
    soft = sum(delay_cluster.nodes[i].layer.stats.soft_timeouts
               for i in delay_cluster.ids)
    print(f"\ndelaying primary triggered {soft} soft timeouts; forwarding kept "
          f"all {delay_result.requests_logged} requests flowing with "
          f"{delay_result.view_changes} view changes (delay < hard timeout)")
    print("the soft timeout is what bounds this attack's damage — "
          "see benchmarks/bench_ablations.py for the same run without it")


if __name__ == "__main__":
    main()
