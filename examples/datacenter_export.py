#!/usr/bin/env python3
"""The export lifecycle: LTE upload, mutual verification, on-train pruning.

Two mutually distrustful railway companies each run a data center.  One of
them initiates an export round (Fig. 4): it reads the latest 2f+1-signed
checkpoint from the replicas, receives the full blocks from one randomly
chosen replica over the 8.5 Mbit/s LTE uplink, verifies the chain, syncs
its peer, and both authorize the delete that lets the train prune its
chain.  A second round afterwards shows the export is incremental.

Run:  python examples/datacenter_export.py
"""

from repro.export.scenario import ExportScenario, ExportScenarioConfig


def main() -> None:
    config = ExportScenarioConfig(
        n_blocks=1000,          # ~10 minutes of operation at a 64 ms cycle
        n_datacenters=2,
        delete_quorum=2,        # both companies must sign off
    )
    print(f"Seeding {config.n_blocks} blocks of juridical data on 4 replicas...")
    scenario = ExportScenario(config)

    replica = scenario.handlers["node-0"]
    print(f"on-train chain before export: heights "
          f"{replica.chain.base_height}..{replica.chain.height} "
          f"({replica.chain.total_size_bytes() / 1e6:.2f} MB)")

    print("\n--- Export round 1 (initiated by dc-0) ---")
    round1 = scenario.run_export("dc-0")
    print(f"full blocks requested from: {round1.full_from}")
    print(f"read   : {round1.read_s:8.2f} s  "
          f"({round1.read_s / round1.total_s * 100:.0f} % — waiting for 2f+1 "
          f"replies over LTE dominates, as in Table II)")
    print(f"verify : {round1.verify_s:8.3f} s")
    print(f"delete : {round1.delete_s:8.2f} s")
    print(f"total  : {round1.total_s:8.2f} s for {round1.blocks_exported} blocks")

    scenario.kernel.run(max_events=500_000)  # drain remaining sync/ack traffic

    for dc_id, dc in scenario.datacenters.items():
        dc.archive.verify()
        print(f"{dc_id}: archive height {dc.archive.height}, integrity OK")

    print("\non-train chains after pruning:")
    for replica_id, handler in scenario.handlers.items():
        chain = handler.chain
        cert = chain.prune_certificate
        signers = sorted(cert.delete_signatures) if cert else []
        print(f"  {replica_id}: base {chain.base_height}, head {chain.height}, "
              f"pruned under delete cert signed by {signers}")

    print("\n--- Export round 2 (no new blocks): must be a fast no-op ---")
    round2 = scenario.run_export("dc-0")
    print(f"total {round2.total_s:.2f} s, {round2.blocks_exported} blocks exported")

    print("\nThe archives are the permanent record; the train now stores only "
          "the window since the last export, with the last exported block as "
          "the verifiable base of the pruned chain (§III-D).")


if __name__ == "__main__":
    main()
