#!/usr/bin/env python3
"""Accident forensics: recover the juridical record from one surviving node.

The scenario the whole design exists for (§III-A, R3): a crash destroys
three of the four recorder nodes.  The investigator salvages the single
surviving node's blockchain, verifies its integrity offline, and — when a
party with access to the salvaged hardware tries to doctor the evidence —
detects the manipulation from the hash structure alone.

The same scenario against the legacy centralized JRU shows the contrast:
if the hardened device is the one that got destroyed, everything is gone;
and physical tampering with its ring buffer is undetectable.

Run:  python examples/crash_forensics.py
"""

from repro.chain import Block, Blockchain
from repro.jru import LegacyJru
from repro.scenarios import ScenarioConfig, SimulatedCluster
from repro.util import ChainError
from repro.wire import Request, SignedRequest


def main() -> None:
    print("Recording 60 s of operation before the accident...")
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", retention_s=0.0))
    # The legacy device logs the same bus data for comparison.
    legacy = LegacyJru()
    original_cycle_hook = cluster.nodes["node-0"].on_bus_cycle

    def tee_to_legacy(cycle):
        request = Request(payload=cycle.encode(), bus_cycle=cycle.cycle_no,
                          recv_timestamp_us=cycle.timestamp_us)
        legacy.record(request)
        original_cycle_hook(cycle)

    cluster.hosts["node-0"].node.on_bus_cycle = tee_to_legacy  # type: ignore[assignment]
    cluster.run(duration_s=60.0)

    print("\n*** ACCIDENT: nodes 0, 1 and 2 are destroyed. ***")
    print("*** The legacy JRU (mounted in the locomotive) is destroyed too. ***")
    legacy.destroy()

    # -- legacy outcome --------------------------------------------------------
    recovered_legacy = legacy.extract("physical-key-1")
    print(f"\nlegacy JRU: {len(recovered_legacy)} events recovered "
          f"(of {legacy.records_written} written) — total data loss")

    # -- ZugChain outcome -------------------------------------------------------
    survivor = cluster.nodes["node-3"]
    blocks = [survivor.chain.block_at(h)
              for h in range(survivor.chain.base_height, survivor.chain.height + 1)]
    print(f"\nsurviving node-3: {len(blocks)} blocks salvaged")

    # Offline verification by the investigating authority.
    recovered = Blockchain.from_blocks(blocks)
    total_events = sum(b.header.request_count for b in blocks)
    print(f"offline verification: chain of height {recovered.height} is intact, "
          f"{total_events} juridical events recovered")

    # Every logged request still carries a replica signature: even a single
    # copy proves which node vouched for each observation.
    sample = blocks[1].requests[0]
    print(f"sample record: bus cycle {sample.request.bus_cycle}, "
          f"observed by {sample.node_id}, signature present "
          f"({len(sample.signature)} bytes)")

    # -- tampering attempt -------------------------------------------------------
    print("\n*** An insider with the salvaged disk tries to doctor the record. ***")
    target = blocks[2]
    forged_request = SignedRequest(
        request=Request(payload=b"nothing happened here",
                        bus_cycle=target.requests[0].request.bus_cycle,
                        recv_timestamp_us=target.requests[0].request.recv_timestamp_us),
        node_id=target.requests[0].node_id,
        signature=target.requests[0].signature,
    )
    doctored = list(blocks)
    doctored[2] = Block(header=target.header,
                        requests=(forged_request,) + target.requests[1:])
    try:
        Blockchain.from_blocks(doctored)
        print("!!! tampering went undetected (this must not happen)")
    except ChainError as exc:
        print(f"tampering DETECTED during verification: {exc}")

    # The legacy device, had it survived, would not have caught this:
    print("\n(legacy contrast: ring-buffer checksums are recomputable by anyone "
          "with physical access — see tests/jru/test_legacy.py::"
          "test_tampering_is_undetectable)")


if __name__ == "__main__":
    main()
