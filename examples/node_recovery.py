#!/usr/bin/env python3
"""Node recovery: a recorder rejoins after downtime and catches up.

A maintenance power-cycle takes node-3 offline for a quarter of a minute.
During the outage the remaining three nodes (still 2f+1) keep recording.
When node-3 returns, it notices stable checkpoints far beyond its own
chain — vouched for by f+1 distinct peers, so a single liar can't trigger
a bogus transfer — requests the missing, checkpoint-verified chain segment
from a peer, fast-forwards, and resumes ordering participation (§III-D's
"transferring a checkpoint to another replica", as a live protocol).

Run:  python examples/node_recovery.py
"""

from repro.scenarios import ScenarioConfig, SimulatedCluster


def main() -> None:
    cluster = SimulatedCluster(ScenarioConfig(system="zugchain", retention_s=0.0))

    print("t=6 s   node-3 loses power (maintenance).")
    cluster.kernel.schedule(6.0, lambda: cluster.crash_node("node-3"))
    print("t=22 s  node-3 comes back online.")
    cluster.kernel.schedule(22.0, lambda: cluster.recover_node("node-3"))

    print("\nRunning 45 s of operation...")
    cluster.run(duration_s=45.0, warmup_s=0.0)

    survivor = cluster.nodes["node-0"]
    recovered = cluster.nodes["node-3"]

    print(f"\nhealthy chain : height {survivor.chain.height}")
    print(f"node-3 chain  : height {recovered.chain.height} "
          f"(was ~{int(6.0 / 0.064 / 10)} blocks at the outage)")
    print(f"state syncs   : {recovered.statesync.syncs_completed} completed, "
          f"{recovered.statesync.syncs_rejected} rejected")

    recovered.chain.verify()
    common = min(recovered.chain.height, survivor.chain.height)
    match = (recovered.chain.block_at(common).block_hash
             == survivor.chain.block_at(common).block_hash)
    print(f"chain integrity OK; head agreement at height {common}: {match}")

    print(f"\nafter recovery node-3 decided {recovered.replica.stats.decided} "
          f"requests through consensus and logged "
          f"{recovered.layer.stats.logged} entries — a full participant again.")
    print("No event recorded during the outage was lost: the other 2f+1 "
          "nodes carried the log, and the transfer delivered it verified.")


if __name__ == "__main__":
    main()
