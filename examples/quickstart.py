#!/usr/bin/env python3
"""Quickstart: a four-node ZugChain recorder on a simulated train.

Builds the paper's testbed (§V-A) — four recorder nodes on a 100 Mbit/s
consensus Ethernet, all reading an MVB bus driven by a train-dynamics
signal generator — runs it for one simulated minute, and reports the
metrics the paper evaluates plus the IEC 62625-style requirement check.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, SimulatedCluster, check_requirements


def main() -> None:
    config = ScenarioConfig(
        system="zugchain",
        cycle_time_s=0.064,   # the common MVB cycle used throughout §V
        payload_bytes=1024,
        block_size=10,
    )
    print("Building the simulated testbed (4 nodes, MVB @ 64 ms, 1 kB payloads)...")
    cluster = SimulatedCluster(config)

    print("Running 60 s of train operation (5 s warmup)...")
    result = cluster.run(duration_s=60.0, warmup_s=5.0)

    print()
    print("=== Measurements (cf. Fig. 6/7 of the paper) ===")
    print(f"mean ordering latency : {result.mean_latency_s * 1000:7.2f} ms   (paper: ~14 ms)")
    print(f"p99 ordering latency  : {result.p99_latency_s * 1000:7.2f} ms")
    print(f"network utilization   : {result.network_utilization * 100:7.2f} %  of 100 Mbit/s")
    print(f"CPU utilization       : {result.cpu_utilization * 100:7.2f} %  of all 4 cores (paper: <= 15 %)")
    print(f"memory footprint      : {result.memory_mean_bytes / 1e6:7.2f} MB")
    print(f"requests logged       : {result.requests_logged} / {result.requests_expected}")
    print(f"view changes          : {result.view_changes}")

    print()
    print("=== Blockchain state on node-0 ===")
    chain = cluster.nodes["node-0"].chain
    print(f"height {chain.height}, base {chain.base_height} "
          f"(older blocks pruned after simulated export), "
          f"head {chain.head.block_hash.hex()[:16]}…")
    chain.verify()
    print("chain integrity: OK (hash links + Merkle payload commitments)")
    heads = {cluster.nodes[i].chain.head.block_hash for i in cluster.ids}
    print(f"identical heads across all {len(cluster.ids)} nodes: {len(heads) == 1}")

    print()
    print("=== JRU requirement check (§V-B) ===")
    report = check_requirements(result)
    for line in report.lines():
        print(" ", line)
    print(f"\nall requirements met: {report.all_passed}")


if __name__ == "__main__":
    main()
