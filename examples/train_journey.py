#!/usr/bin/env python3
"""A realistic train journey, recorded end to end.

Simulates a regional service — acceleration to line speed, cruising,
braking into stations, door cycles, an emergency brake application — over
a *noisy* MVB (occasional dropped cycles and bit flips per node, as
measured on real buses).  Afterwards the recorded blockchain is decoded
back into the signal timeline a crash investigator would read.

Run:  python examples/train_journey.py
"""

from collections import Counter

from repro.bus import ReceptionFaultConfig
from repro.bus.reception import decode_cycle_payload
from repro.bus.nsdb import standard_jru_catalog
from repro.scenarios import ScenarioConfig, SimulatedCluster


def main() -> None:
    config = ScenarioConfig(
        system="zugchain",
        cycle_time_s=0.064,
        payload_bytes=0,            # no padding: real signal sizes only
        retention_s=0.0,            # keep the whole journey on-train
        bus_faults={
            # Realistic per-node reception error profile (§III-B).
            "node-1": ReceptionFaultConfig.noisy(),
            "node-2": ReceptionFaultConfig.noisy(scale=2.0),
        },
    )
    cluster = SimulatedCluster(config)
    # Shorter journey phases so stations appear within the simulated window.
    cluster.generator._config = type(cluster.generator._config)(
        max_speed_kmh=120.0, cruise_duration_s=30.0, stop_duration_s=12.0,
        emergency_brake_prob_per_cycle=0.0008,
        target_payload_bytes=0,
    )

    print("Driving 180 s of simulated service over a noisy MVB...")
    result = cluster.run(duration_s=180.0, warmup_s=0.0)

    gen = cluster.generator
    print(f"\njourney: {gen.stops_made} station stop(s), "
          f"final phase '{gen.phase}', speed {gen.speed_kmh:.1f} km/h")
    for node_id in ("node-1", "node-2"):
        faults = cluster.master.device_faults(node_id)
        print(f"{node_id}: {faults.cycles_dropped} cycles dropped, "
              f"{faults.frames_corrupted} frames corrupted, "
              f"{faults.cycles_delayed} delayed")

    print(f"\nlogged {result.requests_logged} requests "
          f"({result.requests_expected} bus cycles) — divergent observations "
          f"from corrupted receptions are logged too")

    # -- investigator's view: decode the chain back into signals --------------
    nsdb = standard_jru_catalog()
    chain = cluster.nodes["node-0"].chain
    chain.verify()
    print(f"\nblockchain: {chain.height} blocks, integrity OK")

    events = Counter()
    emergency_cycles = []
    speed_trace = []
    for height in range(chain.base_height + 1, chain.height + 1):
        for signed in chain.block_at(height).requests:
            for port, raw, valid in decode_cycle_payload(signed.request.payload):
                if not nsdb.has_port(port):
                    continue
                definition = nsdb.by_port(port)
                events[definition.name] += 1
                if definition.name == "emergency_brake" and definition.decode_value(raw):
                    emergency_cycles.append(signed.request.bus_cycle)
                if definition.name == "speed" and valid:
                    speed_trace.append((signed.request.bus_cycle,
                                        definition.decode_value(raw)))

    print("\nsignal occurrences in the juridical record:")
    for name, count in events.most_common():
        print(f"  {name:24s} {count:6d}")
    if emergency_cycles:
        print(f"\nEMERGENCY BRAKE recorded at bus cycle(s): "
              f"{sorted(set(emergency_cycles))[:10]}")
    if speed_trace:
        peak = max(v for _, v in speed_trace)
        print(f"peak recorded speed: {peak:.1f} km/h "
              f"({len(speed_trace)} speed changes logged — "
              f"unchanged samples filtered per JRU practice)")


if __name__ == "__main__":
    main()
